package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/faults"
)

// --- Policy unit tests -------------------------------------------------------

func TestLeastLoadedPicksMinInflight(t *testing.T) {
	cands := []ShardLoad{
		{ID: 0, InFlight: 7},
		{ID: 1, InFlight: 2},
		{ID: 2, InFlight: 5},
	}
	if got := (leastLoaded{}).Pick(0, cands); got != 1 {
		t.Fatalf("least-loaded picked index %d, want 1", got)
	}
}

func TestOccupancyPrefersFullestPartialBatch(t *testing.T) {
	// Shard 1's forming batch (depth 60 of 64) is closest to flushing
	// full; shard 2's depth is an exact MaxBatch multiple — whole batches
	// waiting, nothing to top off.
	cands := []ShardLoad{
		{ID: 0, InFlight: 1, QueueDepth: 10, MaxBatch: 64},
		{ID: 1, InFlight: 9, QueueDepth: 60, MaxBatch: 64},
		{ID: 2, InFlight: 3, QueueDepth: 128, MaxBatch: 64},
	}
	if got := (occupancyAware{}).Pick(0, cands); got != 1 {
		t.Fatalf("occupancy picked index %d, want 1", got)
	}
	// With every queue empty it degrades to least-loaded.
	for i := range cands {
		cands[i].QueueDepth = 0
	}
	if got := (occupancyAware{}).Pick(0, cands); got != 0 {
		t.Fatalf("occupancy on empty queues picked index %d, want 0 (least loaded)", got)
	}
}

func TestHashRingDeterministicAndConsistent(t *testing.T) {
	const shards = 4
	ring := newHashRing(shards).(*hashRing)
	full := make([]ShardLoad, shards)
	for i := range full {
		full[i] = ShardLoad{ID: i}
	}

	// Same key, same shard — every time.
	keys := make([]uint64, 0, 512)
	owner := map[uint64]int{}
	for i := 0; i < 512; i++ {
		key := routeKey("region-" + strconv.Itoa(i) + "-ACGTACGTACGT")
		keys = append(keys, key)
		owner[key] = full[ring.Pick(key, full)].ID
		if again := full[ring.Pick(key, full)].ID; again != owner[key] {
			t.Fatalf("key %x routed to %d then %d", key, owner[key], again)
		}
	}

	// Every shard owns a slice of the keyspace.
	counts := map[int]int{}
	for _, k := range keys {
		counts[owner[k]]++
	}
	for s := 0; s < shards; s++ {
		if counts[s] == 0 {
			t.Fatalf("shard %d owns no keys: %v", s, counts)
		}
	}

	// Consistency: dropping shard 2 from the candidate set remaps ONLY
	// shard 2's keys; everyone else's assignment is untouched.
	reduced := make([]ShardLoad, 0, shards-1)
	for i := 0; i < shards; i++ {
		if i != 2 {
			reduced = append(reduced, ShardLoad{ID: i})
		}
	}
	for _, k := range keys {
		got := reduced[ring.Pick(k, reduced)].ID
		if owner[k] != 2 && got != owner[k] {
			t.Fatalf("key %x moved %d -> %d although shard 2 left", k, owner[k], got)
		}
		if owner[k] == 2 && got == 2 {
			t.Fatalf("key %x still on the removed shard", k)
		}
	}
}

func TestRouteKeyRegionAffinity(t *testing.T) {
	a := routeKey("ACGTACGTACGTACGTACGT")
	if b := routeKey("ACGTACGTACGTACGTACGT"); a != b {
		t.Fatal("routeKey is not deterministic")
	}
	if c := routeKey("TGCATGCATGCATGCATGCA"); a == c {
		t.Fatal("distinct regions collided (suspicious for these inputs)")
	}
}

func TestUnknownRoutePolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with an unknown route policy did not panic")
		}
	}()
	New(Config{Extender: core.New(20), Shards: 2, RoutePolicy: "no-such-policy"})
}

// --- Router + shard integration ---------------------------------------------

// gatedShard builds one shard whose single worker blocks on gate, so
// tests can pin work in the queue deterministically.
func gatedShard(id int, group *stealGroup[extJob], gate chan struct{}, processed chan extJob) *shard {
	sh := &shard{id: id, sm: &shardMetrics{}}
	work := func() func([]extJob) {
		return func(batch []extJob) {
			<-gate
			for _, j := range batch {
				processed <- j
			}
		}
	}
	sh.ext = newShardBatcher(BatcherConfig{
		MaxBatch: 1, FlushInterval: FlushOpportunistic, QueueCap: 2, Workers: 1,
	}, nil, sh.sm, group, id, work)
	return sh
}

// TestRouterFailoverOnFullQueue proves a job refused by its picked
// shard's full queue lands on a peer (counted as rerouted) instead of
// surfacing 429.
func TestRouterFailoverOnFullQueue(t *testing.T) {
	gate := make(chan struct{})
	processed := make(chan extJob, 64)
	sh0 := gatedShard(0, nil, gate, processed) // no steal group: keep its backlog put
	sh1 := gatedShard(1, nil, gate, processed)
	defer func() { close(gate); sh0.ext.Close(); sh1.ext.Close() }()
	rt, err := newRouter([]*shard{sh0, sh1}, "least-loaded")
	if err != nil {
		t.Fatal(err)
	}

	// Saturate shard 0: one batch in the worker (blocked on gate), queue
	// full behind it.
	job := func(tag int) extJob {
		p := newPending(64)
		return extJob{ctx: t.Context(), req: core.Request{Q: []byte{0, 1}, T: []byte{0, 1}, H0: 5, Tag: tag}, out: p, enq: time.Now()}
	}
	deadline := time.Now().Add(2 * time.Second)
	for sh0.ext.Submit(job(0)) == nil {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 queue never filled")
		}
	}

	if err := rt.submitExt(sh0, job(1)); err != nil {
		t.Fatalf("submitExt with a free peer returned %v", err)
	}
	if got := sh1.sm.rerouted.Load(); got != 1 {
		t.Fatalf("shard 1 rerouted counter = %d, want 1", got)
	}
	if sh0.sm.rejected.Load() == 0 {
		t.Fatal("shard 0 never counted its refusal")
	}
	if sh1.inflight.Load() != 1 || sh1.sm.accepted.Load() != 1 {
		t.Fatalf("failover did not admit on shard 1: inflight=%d accepted=%d",
			sh1.inflight.Load(), sh1.sm.accepted.Load())
	}
}

// TestWorkStealingDrainsStraggler pins a straggler shard's worker and
// proves an idle peer's worker drains the straggler's already-assembled
// batch, with both sides' counters recording the steal. The steal group
// is published only after the victim's worker is provably pinned, so
// exactly one batch is stealable and the test is deterministic.
func TestWorkStealingDrainsStraggler(t *testing.T) {
	group := &stealGroup[extJob]{}
	gate := make(chan struct{})
	entered := make(chan int, 8)   // victim's worker announces each batch it picks up
	processed := make(chan int, 8) // the thief reports what it stole

	victim := &shard{id: 0, sm: &shardMetrics{}}
	victim.ext = newShardBatcher(BatcherConfig{
		MaxBatch: 1, FlushInterval: FlushOpportunistic, QueueCap: 4, Workers: 1,
	}, nil, victim.sm, group, 0, func() func([]extJob) {
		return func(batch []extJob) {
			entered <- batch[0].req.Tag
			<-gate
		}
	})
	thief := &shard{id: 1, sm: &shardMetrics{}}
	thief.ext = newShardBatcher(BatcherConfig{
		MaxBatch: 1, FlushInterval: FlushOpportunistic, QueueCap: 4, Workers: 1,
	}, nil, thief.sm, group, 1, func() func([]extJob) {
		return func(batch []extJob) {
			processed <- batch[0].req.Tag
		}
	})
	defer func() { close(gate); victim.ext.Close(); thief.ext.Close() }()

	submit := func(tag int) {
		t.Helper()
		j := extJob{ctx: t.Context(), req: core.Request{Q: []byte{0, 1}, T: []byte{0, 1}, H0: 5, Tag: tag},
			out: newPending(4), sh: victim, enq: time.Now()}
		if err := victim.ext.Submit(j); err != nil {
			t.Fatalf("submit tag %d: %v", tag, err)
		}
	}

	// Pin the victim's only worker on batch 0, then queue batch 1 behind
	// it — the stealable backlog — and only then link the peers.
	submit(0)
	select {
	case tag := <-entered:
		if tag != 0 {
			t.Fatalf("victim picked up tag %d first, want 0", tag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("victim worker never picked up its first batch")
	}
	submit(1)
	group.set([]*batcher[extJob]{victim.ext, thief.ext})

	select {
	case tag := <-processed:
		if tag != 1 {
			t.Fatalf("thief stole tag %d, want 1 (the queued batch)", tag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle peer never stole the straggler's batch")
	}
	if thief.sm.steals.Load() == 0 {
		t.Fatal("thief's steals counter did not move")
	}
	if victim.sm.stolen.Load() == 0 {
		t.Fatal("victim's stolen counter did not move")
	}
}

// --- Health-aware routing ----------------------------------------------------

// flakyExtender wraps a real software extender with a switchable health
// view, standing in for a device engine whose breaker is open.
type flakyExtender struct {
	align.Extender
	degraded *atomic.Bool
}

func (f flakyExtender) Health() faults.Health {
	h := faults.Health{Breaker: "closed"}
	if f.degraded.Load() {
		h.Breaker = "open"
		h.Degraded = true
	}
	return h
}

// TestRouterAvoidsDegradedShard marks one of two shards degraded and
// proves the router sends every request around it — and returns to it
// after recovery.
func TestRouterAvoidsDegradedShard(t *testing.T) {
	var deg [2]atomic.Bool
	s, ts := newTestServer(t, Config{
		Shards: 2,
		NewExtender: func(i int) align.Extender {
			return flakyExtender{Extender: core.New(20), degraded: &deg[i]}
		},
		Batch: BatcherConfig{MaxBatch: 8, FlushInterval: 200 * time.Microsecond, Workers: 1},
	})
	drive := func(n int) {
		for i := 0; i < n; i++ {
			resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: testProblems(4, 60, int64(40+i))})
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
		}
	}

	deg[1].Store(true)
	before := s.ShardSnapshots()
	drive(10)
	after := s.ShardSnapshots()
	if got := after[1].Accepted - before[1].Accepted; got != 0 {
		t.Fatalf("degraded shard 1 still admitted %d jobs", got)
	}
	if after[1].Avoided == before[1].Avoided {
		t.Fatal("avoided counter did not move while shard 1 was degraded")
	}
	if got := after[0].Accepted - before[0].Accepted; got != 40 {
		t.Fatalf("healthy shard 0 admitted %d jobs, want 40", got)
	}

	// Recovery: the router stops avoiding shard 1 (sequential traffic
	// still ties to shard 0 under least-loaded, so assert eligibility,
	// not receipt)...
	deg[1].Store(false)
	drive(10)
	final := s.ShardSnapshots()
	if final[1].Avoided != after[1].Avoided {
		t.Fatal("router still avoiding shard 1 after recovery")
	}
	// ...and with shard 0 loaded, the next decision lands on shard 1.
	s.shards[0].inflight.Add(1000)
	if sh := s.router.pick(0); sh != s.shards[1] {
		t.Fatalf("pick with shard 0 loaded chose shard %d, want 1", sh.id)
	}
	s.shards[0].inflight.Add(-1000)
}

// TestHealthzClusterTransitions walks /healthz through every cluster
// state: all healthy (ok), some-but-not-all degraded (200 degraded), all
// degraded (still 200 — host-only shards serve exact results), recovery
// back to ok, and draining (503 — now nothing can serve).
func TestHealthzClusterTransitions(t *testing.T) {
	var deg [2]atomic.Bool
	s, ts := newTestServer(t, Config{
		Shards: 2,
		NewExtender: func(i int) align.Extender {
			return flakyExtender{Extender: core.New(20), degraded: &deg[i]}
		},
	})
	check := func(wantCode int, wantStatus, wantDegraded string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantCode || body["status"] != wantStatus {
			t.Fatalf("healthz = %d %q, want %d %q", resp.StatusCode, body["status"], wantCode, wantStatus)
		}
		if wantDegraded != "" && body["shards_degraded"] != wantDegraded {
			t.Fatalf("shards_degraded = %q, want %q", body["shards_degraded"], wantDegraded)
		}
	}

	check(http.StatusOK, "ok", "0")
	deg[0].Store(true)
	check(http.StatusOK, "degraded", "1")
	deg[1].Store(true)
	check(http.StatusOK, "degraded", "2")
	deg[0].Store(false)
	deg[1].Store(false)
	check(http.StatusOK, "ok", "0")
	s.StartDrain()
	check(http.StatusServiceUnavailable, "draining", "")
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

// testProblems builds n extension problems: a query plus a mutated target
// with room to extend, the shape the aligner dispatches.
func testProblems(n, qlen int, seed int64) []ExtendJob {
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	out := make([]ExtendJob, n)
	for i := range out {
		q := make([]byte, qlen)
		for j := range q {
			q[j] = bases[rng.Intn(4)]
		}
		t := append([]byte(nil), q...)
		for m := 0; m < qlen/25; m++ {
			t[rng.Intn(len(t))] = bases[rng.Intn(4)]
		}
		for m := 0; m < qlen/5; m++ {
			t = append(t, bases[rng.Intn(4)])
		}
		out[i] = ExtendJob{Query: string(q), Target: string(t), H0: 20 + rng.Intn(60)}
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Extender == nil {
		cfg.Extender = core.New(20)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestExtendMatchesKernel proves the batched service returns exactly the
// full-band kernel's results (the SeedEx strict-mode guarantee carried
// through admission, coalescing and the worker pool).
func TestExtendMatchesKernel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jobs := testProblems(100, 150, 3)
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out.Results), len(jobs))
	}
	sc := align.DefaultScoring()
	for i, j := range jobs {
		want := align.Extend(genome.Encode(j.Query), genome.Encode(j.Target), j.H0, sc)
		got := out.Results[i]
		if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Fatalf("job %d: served %+v, kernel %+v", i, got, want)
		}
	}
}

// TestExtendCoalescing pins the tentpole behaviour: N concurrent
// single-job requests share device batches — far fewer batches than jobs,
// mean occupancy above one.
func TestExtendCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 64, FlushInterval: 20 * time.Millisecond, Workers: 2},
	})
	const n = 32
	jobs := testProblems(n, 120, 4)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs[i : i+1]})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	snap := s.Metrics().Snapshot(0, 0)
	if snap.Batches >= n {
		t.Fatalf("%d single-job requests produced %d batches; no coalescing happened", n, snap.Batches)
	}
	if snap.MeanOccupancy <= 1 {
		t.Fatalf("mean occupancy %.2f, want > 1", snap.MeanOccupancy)
	}
	t.Logf("%d requests -> %d batches (mean occupancy %.1f)", n, snap.Batches, snap.MeanOccupancy)
}

// TestGracefulShutdown proves the drain contract: a request in flight
// when the drain starts completes with its full results, later requests
// are refused with 503, and Close computes every admitted job.
func TestGracefulShutdown(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 1},
	})
	jobs := testProblems(400, 400, 5) // heavy enough to still be in flight

	inflight := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
		defer resp.Body.Close()
		var out ExtendResponse
		json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode == http.StatusOK && len(out.Results) != len(jobs) {
			t.Errorf("in-flight request returned %d/%d results", len(out.Results), len(jobs))
		}
		inflight <- resp.StatusCode
	}()
	// Wait until the request has passed admission before starting the
	// drain, so it is genuinely in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Accepted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never passed admission")
		}
		time.Sleep(time.Millisecond)
	}
	s.StartDrain()

	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs[:1]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", resp.StatusCode)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200", code)
	}
	s.Close()
	m := s.Metrics()
	if acc, done := m.Accepted.Load(), m.Completed.Load()+m.Expired.Load(); acc != done {
		t.Fatalf("accepted %d jobs but resolved %d after Close", acc, done)
	}
	// healthz reflects the drain.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", hz.StatusCode)
	}
}

// TestBackpressure429 overloads a deliberately tiny server and checks the
// refused requests carry 429 + Retry-After while at least one succeeds.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Batch:      BatcherConfig{MaxBatch: 4, FlushInterval: time.Millisecond, QueueCap: 2, Workers: 1},
		RetryAfter: 2 * time.Second,
	})
	jobs := testProblems(2, 2000, 6) // ~multi-ms each: the worker saturates
	const clients = 32
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	ok, rejected := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			if retryAfter[i] != "2" {
				t.Fatalf("429 without Retry-After: %q", retryAfter[i])
			}
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 || rejected == 0 {
		t.Fatalf("want both successes and rejections, got %d ok / %d rejected", ok, rejected)
	}
	if s.Metrics().Rejected.Load() == 0 {
		t.Fatal("rejection counter not incremented")
	}
}

// TestExtendStream proves the NDJSON endpoint returns one result per
// input line, in order, matching the batch endpoint.
func TestExtendStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jobs := testProblems(50, 130, 7)
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, j := range jobs {
		enc.Encode(j)
	}
	resp, err := http.Post(ts.URL+"/v1/extend/stream", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got []ExtendResult
	dec := json.NewDecoder(resp.Body)
	for {
		var r ExtendResult
		if err := dec.Decode(&r); err != nil {
			break
		}
		got = append(got, r)
	}
	if len(got) != len(jobs) {
		t.Fatalf("stream returned %d results for %d jobs", len(got), len(jobs))
	}
	sc := align.DefaultScoring()
	for i, j := range jobs {
		want := align.Extend(genome.Encode(j.Query), genome.Encode(j.Target), j.H0, sc)
		if got[i].Local != want.Local || got[i].Global != want.Global {
			t.Fatalf("line %d: served %+v, kernel %+v", i, got[i], want)
		}
	}
}

// TestMapEndpoint proves /v1/map serves exactly the records the batch
// pipeline produces for the same reads.
func TestMapEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := genome.Simulate(genome.SimConfig{Length: 30_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(30), rng)
	se := core.New(20)
	a, err := bwamem.New("chrT", ref, se)
	if err != nil {
		t.Fatal(err)
	}
	pr := make([]bwamem.Read, len(reads))
	req := MapRequest{}
	for i, r := range reads {
		pr[i] = bwamem.Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
		req.Reads = append(req.Reads, MapRead{Name: r.ID, Seq: genome.Decode(r.Seq), Qual: string(r.Qual)})
	}
	want, _ := a.Run(pr, 0)

	_, ts := newTestServer(t, Config{Extender: se, Aligner: a})
	resp := postJSON(t, ts.URL+"/v1/map", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(reads) {
		t.Fatalf("got %d results for %d reads", len(out.Results), len(reads))
	}
	for i, r := range out.Results {
		if r.Sam != want[i].String() {
			t.Fatalf("read %d: served SAM differs:\n  served:   %s\n  pipeline: %s", i, r.Sam, want[i].String())
		}
	}
}

// TestMapDisabled pins the 501 for servers started without a reference.
func TestMapDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/map", MapRequest{Reads: []MapRead{{Name: "r", Seq: "ACGT"}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

// TestDeadline504 proves a request deadline shorter than the queue wait
// returns 504 and the expired jobs are skipped, not computed.
func TestDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 4, FlushInterval: time.Millisecond, QueueCap: 64, Workers: 1},
	})
	heavy := testProblems(32, 2000, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: heavy})
		resp.Body.Close()
	}()
	time.Sleep(20 * time.Millisecond) // the worker is now busy for a while
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: heavy[:4], DeadlineMs: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	<-done
}

// TestAbandonPartialAdmission pins the partial-admission accounting: when
// every submitted job has already been delivered before the handler
// discounts the never-submitted tail, the discount itself must close done
// — this deadlocked the handler goroutine before.
func TestAbandonPartialAdmission(t *testing.T) {
	// The racing order: both submitted jobs land before abandon runs.
	p := newPending(3)
	p.deliver(0, core.Response{})
	p.deliver(1, core.Response{})
	p.abandon(2, 3)
	select {
	case <-p.done:
	case <-time.After(5 * time.Second):
		t.Fatal("abandon after full delivery did not close done")
	}

	// The usual order: abandon first, the last delivery closes done.
	p = newPending(3)
	p.abandon(2, 3)
	p.deliver(0, core.Response{})
	select {
	case <-p.done:
		t.Fatal("done closed with a submitted job still in flight")
	default:
	}
	p.deliver(1, core.Response{})
	select {
	case <-p.done:
	case <-time.After(5 * time.Second):
		t.Fatal("last delivery did not close done")
	}

	// mapPending mirrors the same arithmetic (expiry counts as delivery).
	mp := newMapPending(2)
	mp.expire(0, "r0")
	mp.abandon(1, 2)
	select {
	case <-mp.done:
	case <-time.After(5 * time.Second):
		t.Fatal("map abandon after full delivery did not close done")
	}
	if mp.expired.Load() != 1 {
		t.Fatalf("map expired = %d, want 1", mp.expired.Load())
	}
}

// TestExpiredNeverServes200 pins the deadline race: when p.done and
// ctx.Done() are both ready, whichever select arm wins, a request whose
// jobs expired in queue must never be answered 200 with zeroed scores.
// The pre-cancelled context makes every job expire; the opportunistic
// flush resolves the pending quickly so both arms race.
func TestExpiredNeverServes200(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 4, FlushInterval: FlushOpportunistic, Workers: 1},
	})
	body, err := json.Marshal(ExtendRequest{Jobs: testProblems(4, 100, 13)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest("POST", "/v1/extend", bytes.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			t.Fatalf("attempt %d: served 200 for a request whose jobs all expired:\n%s", i, rec.Body)
		}
	}
}

// TestBodyTooLarge pins the request body cap: an oversized body answers
// 413 instead of being decoded whole.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 10})
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{
		Jobs: []ExtendJob{{Query: strings.Repeat("A", 2048), Target: "ACGT"}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	// A body under the cap still validates normally.
	resp = postJSON(t, ts.URL+"/v1/extend", ExtendRequest{
		Jobs: []ExtendJob{{Query: "ACGT", Target: "ACGT", H0: 10}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", resp.StatusCode)
	}
}

// TestBadInput pins the 400 surface.
func TestBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSeqLen: 100})
	cases := []any{
		ExtendRequest{}, // no jobs
		ExtendRequest{Jobs: []ExtendJob{{Query: "ACGT"}}},                                   // empty target
		ExtendRequest{Jobs: []ExtendJob{{Query: strings.Repeat("A", 200), Target: "ACGT"}}}, // too long
		ExtendRequest{Jobs: []ExtendJob{{Query: "ACGT", Target: "ACGT", H0: -1}}},           // negative h0
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/extend", c)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/extend", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsEndpoint checks the /metrics document exposes the check
// statistics (shared core.StatsSnapshot path), batching figures and the
// config echo.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: testProblems(20, 100, 9)})
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs_accepted", "jobs_completed", "batches", "batch_occupancy_mean", "latency_p50_us", "queue_cap", "checks", "config"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
	}
	checks := m["checks"].(map[string]any)
	if checks["total"].(float64) < 20 {
		t.Fatalf("checks.total = %v, want >= 20", checks["total"])
	}
	if _, ok := checks["pass_rate"]; !ok {
		t.Fatal("checks.pass_rate missing")
	}
	if m["batches"].(float64) < 1 {
		t.Fatal("no batches recorded")
	}
	if fmt.Sprint(m["config"].(map[string]any)["max_batch"]) != "64" {
		t.Fatalf("config echo wrong: %v", m["config"])
	}
}

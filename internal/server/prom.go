package server

import (
	"strconv"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/obs"
)

// collectProm is the server's Prometheus collector: it adapts the
// existing atomic counters, power-of-two histograms, check statistics,
// fault-tolerance counters and kernel telemetry into text-exposition
// families at scrape time. Nothing here touches the hot paths — a scrape
// is atomic loads plus formatting.
func (s *Server) collectProm(p *obs.Prom) {
	m := s.met

	// Admission and completion counters.
	p.Counter("seedex_requests_total", "HTTP requests served on the job endpoints.", float64(m.Requests.Load()))
	p.Counter("seedex_requests_bad_input_total", "Requests refused with 400.", float64(m.BadInput.Load()))
	p.Counter("seedex_requests_failed_total", "Requests answered 429/500/503/504 (burns the availability budget).", float64(m.Failed.Load()))
	p.Counter("seedex_jobs_accepted_total", "Jobs admitted to the batching queue.", float64(m.Accepted.Load()))
	p.Counter("seedex_jobs_rejected_total", "Jobs refused with 429 (queue full).", float64(m.Rejected.Load()))
	p.Counter("seedex_jobs_rejected_draining_total", "Jobs refused with 503 (draining).", float64(m.Draining.Load()))
	p.Counter("seedex_jobs_expired_total", "Jobs whose deadline passed before compute.", float64(m.Expired.Load()))
	p.Counter("seedex_jobs_completed_total", "Jobs fully computed.", float64(m.Completed.Load()))
	p.Counter("seedex_batches_total", "Micro-batches dispatched to workers.", float64(m.Batches.Load()))

	// Queues (summed over shards, keeping the pre-sharding meaning).
	extDepth, extCap := s.extQueue()
	p.Gauge("seedex_queue_depth", "Jobs waiting in the admission queue.", float64(extDepth), "queue", "extend")
	p.Gauge("seedex_queue_cap", "Admission queue capacity.", float64(extCap), "queue", "extend")
	if s.mapEnabled() {
		mapDepth, mapCap := s.mapQueue()
		p.Gauge("seedex_queue_depth", "Jobs waiting in the admission queue.", float64(mapDepth), "queue", "map")
		p.Gauge("seedex_queue_cap", "Admission queue capacity.", float64(mapCap), "queue", "map")
	}

	// Histograms with interpolated quantile estimates alongside. The
	// pow-2 nanosecond buckets convert to exact-le second buckets.
	lat := m.Latency.snapshot()
	p.Histogram("seedex_request_latency_seconds", "Request service time (admission to response ready).",
		obs.Pow2Buckets(lat.Counts[:], 1e-9), float64(lat.Sum)/1e9, lat.N)
	latQ := lat.Quantiles().Scaled(1e-9)
	p.Quantiles("seedex_request_latency_quantile_seconds", "Interpolated request latency quantiles.",
		map[float64]float64{0.5: latQ.P50, 0.9: latQ.P90, 0.99: latQ.P99})

	qw := m.QueueWait.snapshot()
	p.Histogram("seedex_queue_wait_seconds", "Per-job wait from admission to batch dispatch.",
		obs.Pow2Buckets(qw.Counts[:], 1e-9), float64(qw.Sum)/1e9, qw.N)
	qwQ := qw.Quantiles().Scaled(1e-9)
	p.Quantiles("seedex_queue_wait_quantile_seconds", "Interpolated queue-wait quantiles.",
		map[float64]float64{0.5: qwQ.P50, 0.9: qwQ.P90, 0.99: qwQ.P99})

	occ := m.Occupancy.snapshot()
	p.Histogram("seedex_batch_occupancy", "Jobs per dispatched micro-batch.",
		obs.Pow2Buckets(occ.Counts[:], 1), float64(occ.Sum), occ.N)
	occQ := occ.Quantiles()
	p.Quantiles("seedex_batch_occupancy_quantile", "Interpolated batch-occupancy quantiles.",
		map[float64]float64{0.5: occQ.P50, 0.9: occQ.P90, 0.99: occQ.P99})

	// Check workflow outcomes and degraded-mode containment counters,
	// merged over every distinct stats source in the shard pool.
	if snap, ok := s.checksSnapshot(); ok {
		p.Counter("seedex_check_total", "Extensions through the check workflow.", float64(snap.Total))
		p.Counter("seedex_check_passed_total", "Extensions proven optimal.", float64(snap.Passed))
		p.Counter("seedex_check_reruns_total", "Extensions rerun with the full band.", float64(snap.Reruns))
		p.Counter("seedex_check_threshold_only_total", "Extensions proven optimal by thresholding alone.", float64(snap.ThresholdOnly))
		for o, n := range snap.Outcomes {
			p.Counter("seedex_check_outcome_total", "Check outcomes by verdict.", float64(n),
				"outcome", core.Outcome(o).String())
		}
		p.Counter("seedex_prefilter_pass_total", "Chains the pre-alignment filter let through to extension.", float64(snap.PrefilterPass))
		p.Counter("seedex_prefilter_reject_total", "Chains the pre-alignment filter turned away.", float64(snap.PrefilterReject))
		p.Counter("seedex_prefilter_rescued_total", "Rejected chains extended anyway to keep mappings bit-identical.", float64(snap.PrefilterRescued))
		p.Counter("seedex_prefilter_false_pass_total", "Passed chains that contributed nothing to the final mapping.", float64(snap.PrefilterFalsePass))
		p.Counter("seedex_device_faults_total", "Device responses that failed integrity validation.", float64(snap.DeviceFaults))
		p.Counter("seedex_device_retries_total", "Device batch attempts retried.", float64(snap.DeviceRetries))
		p.Counter("seedex_breaker_trips_total", "Circuit breaker closed->open transitions.", float64(snap.BreakerTrips))
		p.Counter("seedex_host_only_total", "Extensions served entirely by the host full-band kernel.", float64(snap.HostOnly))
	}
	degradedShards := 0
	for _, sh := range s.shards {
		if sh.degraded() {
			degradedShards++
		}
	}
	if s.cfg.Health != nil || degradedShards > 0 {
		degraded := 0.0
		if degradedShards > 0 {
			degraded = 1
		}
		p.Gauge("seedex_degraded", "1 while a breaker keeps any shard's device out of the path.", degraded)
	}
	if s.cfg.Health != nil {
		h := s.cfg.Health()
		for _, state := range []string{"closed", "open", "half-open"} {
			v := 0.0
			if h.Breaker == state {
				v = 1
			}
			p.Gauge("seedex_breaker_state", "Breaker state (exactly one series is 1).", v, "state", state)
		}
	}

	// Shard pool and routing tier: per-shard jobs, occupancy and breaker
	// state, plus the router's decision and steal counters. These families
	// split the aggregates above by shard; they never replace them.
	p.Gauge("seedex_shards", "Shard units in the serving pool.", float64(len(s.shards)))
	p.Gauge("seedex_shards_degraded", "Shards currently in host-only (degraded) mode.", float64(degradedShards))
	for _, sh := range s.shards {
		lbl := strconv.Itoa(sh.id)
		occ := sh.sm.occupancy.snapshot()
		p.Counter("seedex_shard_jobs_accepted_total", "Jobs admitted to this shard's queue.", float64(sh.sm.accepted.Load()), "shard", lbl)
		p.Counter("seedex_shard_jobs_completed_total", "Jobs computed for this shard.", float64(sh.sm.completed.Load()), "shard", lbl)
		p.Counter("seedex_shard_jobs_rejected_total", "Submits refused by this shard's full queue.", float64(sh.sm.rejected.Load()), "shard", lbl)
		p.Counter("seedex_shard_jobs_expired_total", "Admitted jobs that expired before compute.", float64(sh.sm.expired.Load()), "shard", lbl)
		p.Counter("seedex_shard_batches_total", "Micro-batches dispatched by this shard's collector.", float64(sh.sm.batches.Load()), "shard", lbl)
		p.Gauge("seedex_shard_batch_occupancy_mean", "Mean jobs per dispatched batch on this shard.", occ.Mean(), "shard", lbl)
		p.Gauge("seedex_shard_queue_depth", "Jobs waiting in this shard's admission queue.", float64(sh.ext.QueueDepth()), "shard", lbl)
		p.Gauge("seedex_shard_inflight", "Admitted-but-unfinished jobs on this shard.", float64(sh.inflight.Load()), "shard", lbl)
		p.Counter("seedex_router_routed_total", "Routing decisions that picked this shard.", float64(sh.sm.routed.Load()), "shard", lbl)
		p.Counter("seedex_router_avoided_total", "Routing decisions that skipped this shard while degraded.", float64(sh.sm.avoided.Load()), "shard", lbl)
		p.Counter("seedex_router_rerouted_total", "Jobs failed over to this shard after another queue refused them.", float64(sh.sm.rerouted.Load()), "shard", lbl)
		p.Counter("seedex_router_steals_total", "Batches this shard's workers stole from peers.", float64(sh.sm.steals.Load()), "shard", lbl)
		p.Counter("seedex_router_stolen_total", "Batches peers stole from this shard.", float64(sh.sm.stolen.Load()), "shard", lbl)
		if sh.health != nil {
			h := sh.health()
			deg := 0.0
			if h.Degraded {
				deg = 1
			}
			p.Gauge("seedex_shard_degraded", "1 while this shard is in host-only mode.", deg, "shard", lbl)
			for _, state := range []string{"closed", "open", "half-open"} {
				v := 0.0
				if h.Breaker == state {
					v = 1
				}
				p.Gauge("seedex_shard_breaker_state", "This shard's breaker state (exactly one series is 1).", v, "shard", lbl, "state", state)
			}
		}
	}

	// Kernel-level telemetry: tier mix, demotions, lane occupancy and
	// sweep throughput of the packed batch kernels.
	uptime := time.Since(s.started).Seconds()
	kt := align.KernelSnapshot()
	p.Counter("seedex_kernel_chunks_total", "Batch-kernel invocations (chunks).", float64(kt.Batches))
	for tier, n := range kt.Jobs {
		p.Counter("seedex_kernel_jobs_total", "Jobs per assigned SWAR tier.", float64(n),
			"tier", align.TierNames[tier])
	}
	p.Counter("seedex_kernel_degenerate_total", "Jobs that bypassed the tier ladder.", float64(kt.Degenerate))
	for tier, n := range kt.Demoted {
		if tier == align.TierScalar {
			continue // scalar jobs are never demoted; skip the dead series
		}
		p.Counter("seedex_kernel_demoted_total", "SWAR-assigned jobs demoted to scalar by envelope divergence, by assigned tier.", float64(n),
			"tier", align.TierNames[tier])
	}
	p.Counter("seedex_kernel_solo_total", "Jobs run scalar because their group filled one lane.", float64(kt.Solo))
	for tier, n := range kt.Groups {
		if tier == align.TierScalar {
			continue
		}
		p.Counter("seedex_kernel_groups_total", "Packed lane groups executed, by kernel tier.", float64(n),
			"tier", align.TierNames[tier])
		p.Counter("seedex_kernel_lanes_total", "Lanes filled across packed groups, by kernel tier.", float64(kt.Lanes[tier]),
			"tier", align.TierNames[tier])
	}
	p.Counter("seedex_kernel_cells_total", "DP cells swept by the batch kernels.", float64(kt.Cells))
	p.Gauge("seedex_kernel_lane_occupancy", "Mean lanes filled per packed group.", kt.LaneOccupancy())
	p.Gauge("seedex_kernel_lane_utilization", "Filled lanes over lane capacity across packed groups.", kt.LaneUtilization())
	for tier := range kt.Groups {
		if tier == align.TierScalar {
			continue
		}
		p.Gauge("seedex_kernel_tier_lane_utilization", "Per-tier filled lanes over lane capacity.", kt.TierLaneUtilization(tier),
			"tier", align.TierNames[tier])
	}
	if uptime > 0 {
		p.Gauge("seedex_kernel_cells_per_second", "Mean DP cell throughput since start.", float64(kt.Cells)/uptime)
	}

	// Reference index lifecycle (the generation store behind /v1/map).
	if s.cfg.RefStore != nil {
		st := s.cfg.RefStore.Status()
		p.Gauge("seedex_index_generation", "Serving generation of the reference index store.", float64(st.Generation))
		p.Counter("seedex_index_reloads_total", "Index hot reloads that published a new generation.", float64(st.Reloads))
		p.Counter("seedex_index_reload_failures_total", "Index load attempts rejected (corrupt, truncated, vanished).", float64(st.ReloadFailures))
		p.Counter("seedex_index_rollbacks_total", "Reload triggers that exhausted retries and kept the old generation.", float64(st.Rollbacks))
		p.Gauge("seedex_index_degraded_reload", "1 while the last reload rolled back (still serving the previous generation).", boolGauge(st.DegradedReload))
		p.Gauge("seedex_index_mmap_bytes", "Bytes of the serving generation's read-only mapping (0 on the copy-load path).", float64(st.MappedBytes))
		p.Gauge("seedex_index_warmup_seconds", "Page-touch warmup time of the serving generation.", st.WarmupMs/1e3)
		p.Gauge("seedex_index_load_seconds", "Validate-and-assemble time of the serving generation.", st.LoadMs/1e3)
	}

	// Tracer health.
	if s.trace != nil {
		ts := s.trace.TraceStats()
		p.Gauge("seedex_trace_sample_every", "Head-sampling ratio (1 in N requests).", float64(ts.SampleEvery))
		p.Counter("seedex_trace_sampled_requests_total", "Requests selected by head sampling.", float64(ts.SampledTotal))
		p.Counter("seedex_trace_spans_total", "Spans recorded into the rings.", float64(ts.SpansTotal))
		p.Gauge("seedex_trace_slow_retained", "Requests retained in the slow-trace ring.", float64(ts.SlowRetained))
		if ts.TailEnabled {
			p.Counter("seedex_trace_tail_started_total", "Requests that recorded into a tail journey buffer.", float64(ts.TailStarted))
			p.Counter("seedex_trace_tail_retained_total", "Journeys the tail verdict kept.", float64(ts.TailKept))
			p.Gauge("seedex_trace_tail_retained", "Journeys currently in the retention ring.", float64(ts.TailRetained))
			p.Counter("seedex_trace_tail_span_drops_total", "Spans dropped by full journey buffers.", float64(ts.TailSpanDrops))
		}
	}

	// SLO burn-rate engine (seedex_slo_* families).
	s.slo.Collect(p)

	// Flight recorder.
	if s.flight != nil {
		p.Counter("seedex_flight_dumps_total", "Flight-recorder tarballs written.", float64(s.flight.Dumps()))
	}

	// Build identity and process lifetime. seedex_build_info follows the
	// _info convention: constant 1, identity in the labels.
	b := s.cfg.Build
	p.Gauge("seedex_build_info", "Build identity (constant 1; version/commit/go in labels).", 1,
		"version", b.Version, "commit", b.Commit, "go", b.GoVersion())
	p.Gauge("seedex_process_uptime_seconds", "Seconds since the server started.", uptime)
	p.Gauge("seedex_uptime_seconds", "Seconds since the server started (legacy alias of seedex_process_uptime_seconds).", uptime)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/driver"
	"seedex/internal/faults"
	"seedex/internal/genome"
	"seedex/internal/obs"
	"seedex/internal/readsim"
)

// --- Request-id plumbing ---------------------------------------------------

func TestRequestIDEchoed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jobs := testProblems(2, 80, 11)

	// Client-supplied id is echoed verbatim.
	body, _ := json.Marshal(ExtendRequest{Jobs: jobs})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extend", strings.NewReader(string(body)))
	req.Header.Set("X-Request-Id", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-supplied-42" {
		t.Fatalf("echoed id %q", got)
	}

	// Absent id mints a canonical 16-hex-digit one.
	resp2 := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
	defer resp2.Body.Close()
	rid := resp2.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(rid) {
		t.Fatalf("minted id %q is not 16 hex digits", rid)
	}

	// The stream endpoint echoes too.
	resp3, err := http.Post(ts.URL+"/v1/extend/stream", "application/x-ndjson",
		strings.NewReader(`{"query":"ACGT","target":"ACGT","h0":10}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.Header.Get("X-Request-Id") == "" {
		t.Fatal("stream response missing X-Request-Id")
	}
}

func TestRequestIDInErrorBodies(t *testing.T) {
	// A slow flush plus a 1ms deadline forces the 504 path.
	_, ts := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 64, FlushInterval: 200 * time.Millisecond, Workers: 1},
	})
	jobs := testProblems(1, 60, 12)
	body, _ := json.Marshal(ExtendRequest{Jobs: jobs, DeadlineMs: 1})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extend", strings.NewReader(string(body)))
	req.Header.Set("X-Request-Id", "feed1234")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RequestID != "feed1234" {
		t.Fatalf("504 body request_id %q", eb.RequestID)
	}

	// 400s carry it as well.
	resp2 := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{})
	defer resp2.Body.Close()
	var eb2 errorBody
	if err := json.NewDecoder(resp2.Body).Decode(&eb2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest || eb2.RequestID == "" {
		t.Fatalf("400 body %+v (status %d)", eb2, resp2.StatusCode)
	}
}

// --- End-to-end tracing ----------------------------------------------------

// TestTraceEndToEnd drives one request through a band so narrow the
// checks must fail, then asserts its exported trace shows every pipeline
// stage — queue wait, batch flush, kernel tier, check outcome and the
// forced host rerun — sharing the request's id.
func TestTraceEndToEnd(t *testing.T) {
	tracer := obs.New(obs.Config{SampleEvery: 1})
	se := core.New(2) // strict mode, band 2: divergent targets cannot pass
	_, ts := newTestServer(t, Config{
		Extender: se,
		Batch:    BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 1},
		Trace:    tracer,
	})

	jobs := testProblems(16, 120, 13)
	body, _ := json.Marshal(ExtendRequest{Jobs: jobs})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extend", strings.NewReader(string(body)))
	req.Header.Set("X-Request-Id", "deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	reran := false
	for _, r := range out.Results {
		reran = reran || r.Rerun
	}
	if !reran {
		t.Fatal("band 2 strict served no reruns; the trace cannot show one")
	}

	get, err := http.Get(ts.URL + "/debug/traces?trace=deadbeef&format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	wantTrace := obs.FormatID(0xdeadbeef)
	kinds := map[string]int{}
	sc := bufio.NewScanner(get.Body)
	for sc.Scan() {
		var span map[string]any
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if span["trace"] != wantTrace {
			t.Fatalf("span %v not filtered to trace %s", span, wantTrace)
		}
		kinds[span["span"].(string)]++
	}
	for _, want := range []string{"request", "queue_wait", "batch_flush", "kernel", "check", "host_rerun"} {
		if kinds[want] == 0 {
			t.Fatalf("trace missing %q spans (got %v)", want, kinds)
		}
	}

	// The kernel span names a real tier and the check span a verdict.
	get2, err := http.Get(ts.URL + "/debug/traces?trace=deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer get2.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(get2.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	sawTier, sawOutcome := false, false
	for _, e := range doc.TraceEvents {
		if e.Name == "kernel" {
			switch e.Args["tier"] {
			case "swar8", "swar16", "scalar":
				sawTier = true
			}
		}
		if e.Name == "check" {
			if s, ok := e.Args["outcome"].(string); ok && s != "" {
				sawOutcome = true
			}
		}
	}
	if !sawTier || !sawOutcome {
		t.Fatalf("chrome export missing tier/outcome args (tier=%v outcome=%v)", sawTier, sawOutcome)
	}

	// The slow ring retained the request too.
	slow, err := http.Get(ts.URL + "/debug/traces/slow?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Body.Close()
	data, _ := io.ReadAll(slow.Body)
	if !strings.Contains(string(data), wantTrace) {
		t.Fatalf("slow ring missing trace %s:\n%s", wantTrace, data)
	}
}

func TestTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when tracing is disabled", resp.StatusCode)
	}
}

// TestTraceLiveReads races span recording against trace exports; under
// -race this proves the export path is clean against live writers.
func TestTraceLiveReads(t *testing.T) {
	tracer := obs.New(obs.Config{SampleEvery: 1, RingSpans: 128})
	_, ts := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 8, FlushInterval: 100 * time.Microsecond, Workers: 2},
		Trace: tracer,
	})
	jobs := testProblems(4, 60, 14)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		for _, path := range []string{"/debug/traces", "/debug/traces/slow", "/debug/traces?format=ndjson"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		select {
		case <-done:
			if tracer.TraceStats().SpansTotal == 0 {
				t.Error("no spans recorded")
			}
			return
		default:
		}
	}
}

// --- Prometheus exposition -------------------------------------------------

// promScrape fetches /metrics?format=prometheus and parses it strictly:
// every sample belongs to a declared family, histogram buckets are
// le-monotone and cum-monotone, and values parse.
type promScrape struct {
	types   map[string]string  // family -> counter|gauge|histogram
	samples map[string]float64 // full series (name+labels) -> value
}

func scrapeProm(t *testing.T, url string) promScrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	sc := promScrape{types: map[string]string{}, samples: map[string]float64{}}
	helped := map[string]bool{}
	// Histogram bucket monotonicity is tracked per family as lines stream.
	lastLE := map[string]float64{}
	lastCum := map[string]float64{}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if !helped[f[2]] {
				t.Fatalf("TYPE before HELP for %s", f[2])
			}
			if f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram" {
				t.Fatalf("unknown type %q", f[3])
			}
			sc.types[f[2]] = f[3]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && sc.types[strings.TrimSuffix(name, suf)] == "histogram" {
				family = strings.TrimSuffix(name, suf)
			}
		}
		if sc.types[family] == "" {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if strings.HasSuffix(name, "_bucket") {
			le := leOf(t, labels)
			if prev, ok := lastLE[family]; ok && le <= prev {
				t.Fatalf("%s buckets not le-monotone: %v after %v", family, le, prev)
			}
			if prev, ok := lastCum[family]; ok && val < prev {
				t.Fatalf("%s buckets not cum-monotone: %v after %v", family, val, prev)
			}
			lastLE[family], lastCum[family] = le, val
		}
		sc.samples[name+labels] = val
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	return sc
}

func leOf(t *testing.T, labels string) float64 {
	t.Helper()
	m := regexp.MustCompile(`le="([^"]+)"`).FindStringSubmatch(labels)
	if m == nil {
		t.Fatalf("bucket without le label: %q", labels)
	}
	if m[1] == "+Inf" {
		return float64(1 << 62)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", m[1], err)
	}
	return v
}

func TestPrometheusRoundTrip(t *testing.T) {
	tracer := obs.New(obs.Config{SampleEvery: 2})
	_, ts := newTestServer(t, Config{
		Batch: BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 1},
		Trace: tracer,
	})
	jobs := testProblems(32, 100, 15)
	drive := func() {
		resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	drive()
	first := scrapeProm(t, ts.URL)

	// The exposition must surface the check outcomes, the fault/breaker
	// counters, the histograms with quantile estimates, and the kernel
	// telemetry.
	for _, want := range []string{
		"seedex_jobs_accepted_total", "seedex_jobs_completed_total",
		"seedex_check_total", "seedex_device_faults_total", "seedex_breaker_trips_total",
		"seedex_prefilter_pass_total", "seedex_prefilter_reject_total",
		"seedex_prefilter_rescued_total", "seedex_prefilter_false_pass_total",
		"seedex_request_latency_seconds", "seedex_queue_wait_seconds", "seedex_batch_occupancy",
		"seedex_request_latency_quantile_seconds",
		"seedex_kernel_jobs_total", "seedex_kernel_lane_occupancy",
		"seedex_kernel_lane_utilization", "seedex_kernel_tier_lane_utilization",
		"seedex_kernel_demoted_total",
		"seedex_trace_spans_total",
	} {
		if _, ok := first.types[want]; !ok {
			t.Errorf("scrape missing family %s", want)
		}
	}
	if _, ok := first.samples[`seedex_check_outcome_total{outcome="pass-s2"}`]; !ok {
		t.Error("scrape missing seedex_check_outcome_total{outcome=\"pass-s2\"}")
	}
	// The per-tier kernel families carry one series per SWAR tier (scalar
	// has no lanes or demotions, so it is skipped), labeled with the tier
	// names the tracer uses.
	for _, tier := range []string{"swar8x2", "swar8", "swar16"} {
		for _, family := range []string{
			"seedex_kernel_demoted_total", "seedex_kernel_tier_lane_utilization",
		} {
			if _, ok := first.samples[family+`{tier="`+tier+`"}`]; !ok {
				t.Errorf("scrape missing %s{tier=%q}", family, tier)
			}
		}
	}
	// Lane utilization is a ratio; a driven server reports it in (0, 1].
	if u := first.samples["seedex_kernel_lane_utilization"]; u <= 0 || u > 1 {
		t.Errorf("seedex_kernel_lane_utilization = %v, want in (0, 1]", u)
	}
	if _, ok := first.samples[`seedex_request_latency_quantile_seconds{quantile="0.99"}`]; !ok {
		t.Error("scrape missing p99 latency quantile")
	}

	// Counters never decrease across scrapes.
	drive()
	second := scrapeProm(t, ts.URL)
	for series, v1 := range first.samples {
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			family = series[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suf)
		}
		if first.types[family] != "counter" {
			continue
		}
		v2, ok := second.samples[series]
		if !ok {
			t.Errorf("counter series %s disappeared", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s decreased: %v -> %v", series, v1, v2)
		}
	}
	if second.samples["seedex_jobs_completed_total"] <= first.samples["seedex_jobs_completed_total"] {
		t.Error("completed counter did not advance across scrapes")
	}
}

// TestPrometheusPrefilterFamilies drives a prefilter-enabled /v1/map
// server and checks the tier's whole reporting surface: live
// seedex_prefilter_* counters in the scrape, the enablement echo in the
// /metrics config block, and the on/off field in /healthz.
func TestPrometheusPrefilterFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ref := genome.Simulate(genome.SimConfig{Length: 30_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(25), rng)
	se := core.New(20)
	a, err := bwamem.New("chrT", ref, se)
	if err != nil {
		t.Fatal(err)
	}
	a.Opts.Prefilter = true
	a.Stats = core.NewStats()
	_, ts := newTestServer(t, Config{Extender: se, Aligner: a})

	req := MapRequest{}
	for _, r := range reads {
		req.Reads = append(req.Reads, MapRead{Name: r.ID, Seq: genome.Decode(r.Seq), Qual: string(r.Qual)})
	}
	resp := postJSON(t, ts.URL+"/v1/map", req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sc := scrapeProm(t, ts.URL)
	if sc.samples["seedex_prefilter_pass_total"] <= 0 {
		t.Fatalf("prefilter pass counter not live: %v", sc.samples["seedex_prefilter_pass_total"])
	}
	for _, fam := range []string{
		"seedex_prefilter_pass_total", "seedex_prefilter_reject_total",
		"seedex_prefilter_rescued_total", "seedex_prefilter_false_pass_total",
	} {
		if typ := sc.types[fam]; typ != "counter" {
			t.Errorf("family %s has type %q, want counter", fam, typ)
		}
	}

	var met struct {
		Config struct {
			Prefilter   bool    `json:"prefilter"`
			PrefilterTh float64 `json:"prefilter_threshold"`
		} `json:"config"`
		Checks *struct {
			PrefilterPass int64 `json:"prefilter_pass"`
		} `json:"checks"`
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if !met.Config.Prefilter || met.Config.PrefilterTh <= 0 {
		t.Fatalf("config echo misses prefilter state: %+v", met.Config)
	}
	if met.Checks == nil || met.Checks.PrefilterPass <= 0 {
		t.Fatalf("checks block misses prefilter counters: %+v", met.Checks)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz map[string]string
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["prefilter"] != "on" {
		t.Fatalf("healthz prefilter = %q, want on", hz["prefilter"])
	}
}

// TestPrometheusShardedFamilies extends the round trip to the shard pool
// and routing tier: a 2-shard device-backed server must expose the
// per-shard job/occupancy/breaker families and the router counters, all
// shard-labelled, alongside (never instead of) the aggregates.
func TestPrometheusShardedFamilies(t *testing.T) {
	engs := []*driver.Engine{chaosEngine(faults.Config{}), chaosEngine(faults.Config{})}
	_, ts := newTestServer(t, Config{
		Shards:      2,
		NewExtender: func(i int) align.Extender { return engs[i] },
		Batch:       BatcherConfig{MaxBatch: 16, FlushInterval: time.Millisecond, Workers: 1},
	})
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: testProblems(32, 100, 17)})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	scrape := scrapeProm(t, ts.URL)
	if got := scrape.samples["seedex_shards"]; got != 2 {
		t.Errorf("seedex_shards = %v, want 2", got)
	}
	if got := scrape.samples["seedex_shards_degraded"]; got != 0 {
		t.Errorf("seedex_shards_degraded = %v, want 0", got)
	}
	for _, family := range []string{
		"seedex_shard_jobs_accepted_total", "seedex_shard_jobs_completed_total",
		"seedex_shard_batches_total", "seedex_shard_batch_occupancy_mean",
		"seedex_shard_queue_depth", "seedex_shard_inflight",
		"seedex_router_routed_total", "seedex_router_avoided_total",
		"seedex_router_rerouted_total", "seedex_router_steals_total",
		"seedex_shard_degraded",
	} {
		for _, sh := range []string{"0", "1"} {
			if _, ok := scrape.samples[family+`{shard="`+sh+`"}`]; !ok {
				t.Errorf("scrape missing %s{shard=%q}", family, sh)
			}
		}
	}
	// Each device-backed shard exposes its own breaker-state series, one
	// per state, exactly one of them 1 (closed, here).
	for _, sh := range []string{"0", "1"} {
		if v := scrape.samples[`seedex_shard_breaker_state{shard="`+sh+`",state="closed"}`]; v != 1 {
			t.Errorf("shard %s closed-breaker series = %v, want 1", sh, v)
		}
	}
	// Aggregates survive sharding: shard-labelled accepted jobs sum to the
	// server-wide counter.
	sum := scrape.samples[`seedex_shard_jobs_accepted_total{shard="0"}`] +
		scrape.samples[`seedex_shard_jobs_accepted_total{shard="1"}`]
	if total := scrape.samples["seedex_jobs_accepted_total"]; sum != total {
		t.Errorf("per-shard accepted sums to %v, aggregate says %v", sum, total)
	}
}

// --- Hot-path allocation guard ---------------------------------------------

// TestExtWorkerZeroAlloc pins the serving hot path: one warmed-up worker
// processing a full batch performs zero allocations per batch — with
// tracing disabled, with every job head-sampled, with tail sampling
// checking out a journey per request, and with both modes combined
// (span recording is atomic stores into preallocated rings and
// journey buffers).
func TestExtWorkerZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tracer *obs.Tracer
	}{
		{"tracing-off", nil},
		{"tracing-sampled", obs.New(obs.Config{SampleEvery: 1})},
		{"tracing-tail", obs.New(obs.Config{Tail: obs.TailConfig{Enabled: true}})},
		{"tracing-head-tail", obs.New(obs.Config{SampleEvery: 1, Tail: obs.TailConfig{Enabled: true}})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{
				Extender: core.New(20),
				Batch:    BatcherConfig{MaxBatch: 16, Workers: 1},
				Trace:    tc.tracer,
			})
			defer s.Close()
			worker := s.extWorker(s.shards[0])
			probs := testProblems(16, 100, 16)
			// A pending that never completes: remaining stays far above
			// zero, so deliver never closes done and the batch can be
			// replayed indefinitely.
			p := &pending{resp: make([]core.Response, len(probs)), done: make(chan struct{})}
			p.remaining.Store(1 << 30)
			ref := tc.tracer.Sample(1)
			batch := make([]extJob, len(probs))
			for i, j := range probs {
				batch[i] = extJob{
					ctx: context.Background(),
					req: core.Request{Q: []byte(j.Query), T: []byte(j.Target), H0: j.H0, Tag: i},
					out: p,
					sh:  s.shards[0],
					tr:  ref,
					enq: time.Now(),
				}
			}
			for i := 0; i < 3; i++ { // warm up grow-only scratch
				worker(batch)
			}
			if avg := testing.AllocsPerRun(50, func() { worker(batch) }); avg != 0 {
				t.Fatalf("%s: %v allocs per batch, want 0", tc.name, avg)
			}
		})
	}
}

// BenchmarkExtWorker measures the worker batch path, the denominator of
// the tracing-overhead budget (b.ReportAllocs guards the zero-alloc
// claim under `go test -bench`).
func BenchmarkExtWorker(b *testing.B) {
	for _, tc := range []struct {
		name   string
		tracer *obs.Tracer
	}{
		{"tracing-off", nil},
		{"tracing-sampled", obs.New(obs.Config{SampleEvery: 1})},
		{"tracing-tail", obs.New(obs.Config{Tail: obs.TailConfig{Enabled: true}})},
		{"tracing-head-tail", obs.New(obs.Config{SampleEvery: 1, Tail: obs.TailConfig{Enabled: true}})},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := New(Config{
				Extender: core.New(20),
				Batch:    BatcherConfig{MaxBatch: 16, Workers: 1},
				Trace:    tc.tracer,
			})
			defer s.Close()
			worker := s.extWorker(s.shards[0])
			probs := testProblems(16, 100, 17)
			p := &pending{resp: make([]core.Response, len(probs)), done: make(chan struct{})}
			p.remaining.Store(1 << 30)
			ref := tc.tracer.Sample(1)
			batch := make([]extJob, len(probs))
			for i, j := range probs {
				batch[i] = extJob{
					ctx: context.Background(),
					req: core.Request{Q: []byte(j.Query), T: []byte(j.Target), H0: j.H0, Tag: i},
					out: p,
					sh:  s.shards[0],
					tr:  ref,
					enq: time.Now(),
				}
			}
			worker(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				worker(batch)
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits

package server

import (
	"encoding/json"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/driver"
	"seedex/internal/faults"
	"seedex/internal/genome"
)

// verifyExtend posts one batch of jobs and asserts every served result is
// bit-identical to the scalar full-band reference.
func verifyExtend(t *testing.T, url string, jobs []ExtendJob) {
	t.Helper()
	resp := postJSON(t, url+"/v1/extend", ExtendRequest{Jobs: jobs})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("extend status %d", resp.StatusCode)
		return
	}
	var out ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Error(err)
		return
	}
	sc := align.DefaultScoring()
	for i, j := range jobs {
		want := align.Extend(genome.Encode(j.Query), genome.Encode(j.Target), j.H0, sc)
		got := out.Results[i]
		if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Errorf("job %d: served %+v, kernel %+v", i, got, want)
			return
		}
	}
}

// TestShardedMixedPolicyRace hammers a 4-shard cluster with concurrent
// clients under every registered routing policy (run with -race). Every
// result must be bit-identical to the full-band kernel regardless of
// which shard computed it, and the shard accounting must balance when
// the dust settles.
func TestShardedMixedPolicyRace(t *testing.T) {
	const (
		shards     = 4
		clients    = 8
		reqsPer    = 5
		jobsPerReq = 16
	)
	for _, policy := range RoutingPolicies() {
		t.Run(policy, func(t *testing.T) {
			s, ts := newTestServer(t, Config{
				Shards:      shards,
				RoutePolicy: policy,
				NewExtender: func(int) align.Extender { return core.New(20) },
				Batch:       BatcherConfig{MaxBatch: 16, FlushInterval: 200 * time.Microsecond, Workers: 2},
			})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for r := 0; r < reqsPer; r++ {
						verifyExtend(t, ts.URL, testProblems(jobsPerReq, 90, int64(1000+c*reqsPer+r)))
					}
				}(c)
			}
			wg.Wait()

			// Accounting: every admitted job was computed (nothing had a
			// deadline), nothing is left in flight, and the routing tier
			// made exactly one decision per request.
			var accepted, completed, routed, rerouted int64
			for _, snap := range s.ShardSnapshots() {
				accepted += snap.Accepted
				completed += snap.Completed
				routed += snap.Routed
				rerouted += snap.Rerouted
				if snap.InFlight != 0 {
					t.Errorf("shard %d still reports %d in flight", snap.ID, snap.InFlight)
				}
			}
			if want := int64(clients * reqsPer * jobsPerReq); accepted != want || completed != want {
				t.Errorf("accepted=%d completed=%d, want %d each (rerouted=%d)", accepted, completed, want, rerouted)
			}
			if want := int64(clients * reqsPer); routed != want {
				t.Errorf("routed=%d decisions, want %d (one per request)", routed, want)
			}
		})
	}
}

// containmentSeed honors the CI chaos matrix: SEEDEX_CHAOS_SEED pins the
// fault-injection seed, otherwise a fixed default runs.
func containmentSeed(t *testing.T) int64 {
	if v := os.Getenv("SEEDEX_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("SEEDEX_CHAOS_SEED=%q: %v", v, err)
		}
		return s
	}
	return 11
}

// TestShardChaosContainment proves a breaker trip is a single-shard
// event: with shard 0's device core-failing every attempt and shard 1's
// healthy, shard 0 trips into host-only mode, the router routes around
// it, shard 1 keeps serving on its device, and every result served
// before, during and after the trip is bit-identical to the full-band
// kernel.
func TestShardChaosContainment(t *testing.T) {
	engs := []*driver.Engine{
		chaosEngine(faults.Config{Seed: containmentSeed(t), CoreFail: 1}),
		chaosEngine(faults.Config{}),
	}
	s, ts := newTestServer(t, Config{
		Shards:      2,
		NewExtender: func(i int) align.Extender { return engs[i] },
		Batch:       BatcherConfig{MaxBatch: 32, FlushInterval: time.Millisecond, Workers: 2},
	})

	drive := func(rounds, clients int, seed int64) {
		t.Helper()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					verifyExtend(t, ts.URL, testProblems(32, 110, seed+int64(c*rounds+r)))
				}
			}(c)
		}
		wg.Wait()
	}

	// Phase 1: concurrent traffic spreads over both shards; shard 0's
	// engine core-fails every device attempt, so its checker falls back
	// to the host (exact results) and its breaker trips.
	deadline := time.Now().Add(10 * time.Second)
	for round := int64(0); !s.shards[0].degraded(); round++ {
		if time.Now().After(deadline) {
			t.Fatal("shard 0's breaker never tripped under sustained core failures")
		}
		drive(1, 4, 2000+round*100)
	}
	if t.Failed() {
		t.FailNow() // a miscompare inside drive already tells the story
	}

	// Phase 2: the trip is contained. Shard 1's breaker stays closed,
	// the router avoids shard 0, and served results stay exact.
	before := s.ShardSnapshots()
	drive(2, 4, 5000)
	after := s.ShardSnapshots()
	if s.shards[1].degraded() || after[1].Breaker != "closed" {
		t.Fatalf("healthy shard caught the neighbor's trip: %+v", after[1])
	}
	if got := after[0].Accepted - before[0].Accepted; got != 0 && !s.shards[0].degraded() {
		// Shard 0 may have recovered mid-phase via half-open probes (its
		// injector still fails everything, so it re-trips); only a still-
		// degraded shard must see no admissions.
		t.Logf("shard 0 admitted %d during phase 2 (breaker cycling)", got)
	}
	if after[0].Avoided == before[0].Avoided {
		t.Fatal("router never avoided the degraded shard")
	}
	if after[1].Accepted == before[1].Accepted {
		t.Fatal("healthy shard served nothing while its peer was down")
	}

	// The cluster reports the partial degradation, still ready for
	// traffic: 200 degraded with exactly one shard out.
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("partially degraded cluster answered %d, want 200", code)
	}
	if s.shards[0].degraded() && (health["status"] != "degraded" || health["shards_degraded"] != "1") {
		t.Fatalf("healthz = %v, want degraded with shards_degraded=1", health)
	}

	// Fault containment stats live on the right shard: shard 0's engine
	// saw faults and trips, shard 1's saw none.
	if engs[0].Health().Trips == 0 {
		t.Fatal("shard 0's breaker recorded no trips")
	}
	if engs[1].Device().Injector().Counters().Total() != 0 {
		t.Fatal("healthy shard's injector fired — fault domains are not isolated")
	}
}

package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/faults"
	"seedex/internal/fmindex"
	"seedex/internal/obs"
	"seedex/internal/refstore"
)

// Config assembles a Server.
type Config struct {
	// Extender drives /v1/extend and /v1/extend/stream. Required. When it
	// is a *core.SeedEx (or any extender whose sessions are
	// *core.Checker), batches run the full speculate-check-rerun workflow
	// and responses carry the rerun flag; other extenders run their plain
	// batch path.
	Extender align.Extender
	// Aligner, when non-nil, enables /v1/map (full read mapping).
	Aligner *bwamem.Aligner
	// RefStore, when non-nil, serves /v1/map from the crash-safe
	// generation store instead of a fixed Aligner: map workers follow
	// the store's current generation (mmap-backed, hot-reloadable via
	// POST /admin/reload or the store's own triggers), rebuilding their
	// mapping session when a reload publishes a new generation.
	// In-flight batches drain on the generation they acquired.
	RefStore *refstore.Store
	// NewAligner builds the mapping aligner over one generation's
	// reference and index (the embedder wires the extender, options and
	// shared stats sink). Required when RefStore is set.
	NewAligner func(ref *bwamem.Reference, ix *fmindex.Index) *bwamem.Aligner
	// MapOpts echoes the aligner options NewAligner applies, so the
	// health and metrics surfaces can report the mapping configuration
	// without a fixed aligner instance to inspect. Ignored when Aligner
	// is set.
	MapOpts bwamem.Options
	// MapStats, when non-nil, is the shared check-statistics sink the
	// RefStore aligners record into (so prefilter counters survive
	// generation swaps). Ignored when Aligner is set.
	MapStats *core.Stats
	// Shards splits the service into that many independent shard units —
	// each its own micro-batcher, worker pool, extender (see NewExtender)
	// and, for engine-backed extenders, circuit breaker — behind the
	// routing tier. Default 1, which preserves the unsharded pipeline
	// (same worker loop, same one-FlushInterval latency bound).
	Shards int
	// RoutePolicy names the routing policy for Shards > 1:
	// "least-loaded" (default; fewest in-flight jobs), "occupancy"
	// (prefer the shard about to flush a non-full batch), or "hash"
	// (consistent hashing by reference region). See RegisterRoutingPolicy
	// for custom policies. New panics on an unknown name — validate
	// user-supplied names against RoutingPolicies first.
	RoutePolicy string
	// NewExtender, when non-nil, builds shard i's extender, so every
	// shard gets its own engine (and so its own breaker and fault
	// domain). When nil, all shards share Extender — safe because
	// sessions are per-worker either way, but then all shards share one
	// health/breaker view too.
	NewExtender func(shard int) align.Extender
	// Batch tunes the extension micro-batcher; see BatcherConfig for the
	// defaults (flush at 64 jobs or 200µs).
	Batch BatcherConfig
	// MapBatch tunes the mapping micro-batcher. Mapping jobs cost far more
	// than single extensions, so its defaults are smaller: flush at 16
	// reads or the same interval.
	MapBatch BatcherConfig
	// MaxJobsPerRequest bounds one POST body (default 4096 jobs or reads).
	MaxJobsPerRequest int
	// MaxSeqLen bounds one query or target sequence (default 100_000).
	MaxSeqLen int
	// MaxBodyBytes bounds one request body (including a whole NDJSON
	// stream); larger bodies answer 413 instead of being read without
	// bound. Default: room for a maximal legitimate request —
	// MaxJobsPerRequest jobs of two MaxSeqLen sequences plus JSON framing.
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Health, when non-nil, feeds the fault-tolerance status into /metrics
	// and /healthz (breaker state, fault/retry/degradation counters). It is
	// picked up automatically when Extender exposes a
	// `Health() faults.Health` method (the FPGA driver engine does).
	Health func() faults.Health
	// Trace, when non-nil, records pipeline spans (admission, queue wait,
	// batch flush, kernel tier, check outcome, host rerun) for sampled
	// requests and exports them at /debug/traces. A nil tracer costs the
	// job endpoints one pointer compare per instrumentation site. Tail
	// retention (obs.Config.Tail) additionally keeps the full journey of
	// every request that breaches its budget, fails, or crosses a steal,
	// reroute, rescue, reload overlap or fault.
	Trace *obs.Tracer
	// Build identifies the binary for seedex_build_info (stamped from
	// -ldflags in cmd/seedex-serve; defaults dev/unknown).
	Build obs.BuildInfo
	// SLO tunes the burn-rate engine's declared objectives; the zero
	// value enables it with defaults (see SLOConfig).
	SLO SLOConfig
	// Flight configures the flight recorder; an empty Dir disables it.
	// With a recorder configured the server also starts a watcher that
	// dumps automatically on breaker trips, reload rollbacks and
	// fast-burn SLO alerts.
	Flight obs.FlightConfig
	// FlightPoll is the watcher's trigger-polling cadence (default 2s).
	FlightPoll time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.RoutePolicy == "" {
		c.RoutePolicy = "least-loaded"
	}
	if c.MapBatch.MaxBatch <= 0 {
		c.MapBatch.MaxBatch = 16
	}
	if c.MapBatch.FlushInterval == 0 {
		// Inherit the extension flush setting, sentinel included: an
		// opportunistic (negative) Batch interval carries over.
		c.MapBatch.FlushInterval = c.Batch.FlushInterval
	}
	if c.MaxJobsPerRequest <= 0 {
		c.MaxJobsPerRequest = 4096
	}
	if c.MaxSeqLen <= 0 {
		c.MaxSeqLen = 100_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = int64(c.MaxJobsPerRequest) * int64(2*c.MaxSeqLen+512)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the alignment service: micro-batching pipelines over the
// packed extension kernels plus the HTTP surface. Create with New, expose
// via Handler, stop with StartDrain + Close.
type Server struct {
	cfg      Config
	met      *Metrics
	shards   []*shard
	router   *router
	stats    []*core.Stats // distinct check-statistics sources across shards
	trace    *obs.Tracer   // nil when tracing is disabled
	reg      *obs.Registry
	mux      *http.ServeMux
	draining atomic.Bool
	started  time.Time

	slo        *obs.SLO
	flight     *obs.FlightRecorder
	flightStop chan struct{}
	flightDone chan struct{}
	closeOnce  sync.Once
}

// New builds the shard pool, the routing tier and the HTTP mux. The
// caller owns cfg.Extender / cfg.NewExtender's engines (and cfg.Aligner);
// the server owns everything it starts. New panics on an unknown
// cfg.RoutePolicy — check names from flags against RoutingPolicies.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Resolve the batcher defaults up front: the worker factories read the
	// final values through s.cfg before the pools start.
	cfg.Batch = cfg.Batch.withDefaults()
	cfg.MapBatch = cfg.MapBatch.withDefaults()
	if cfg.RefStore != nil && cfg.NewAligner == nil {
		panic("server: Config.RefStore requires Config.NewAligner")
	}
	s := &Server{cfg: cfg, met: &Metrics{}, trace: cfg.Trace, reg: obs.NewRegistry(), mux: http.NewServeMux(), started: time.Now()}
	if s.cfg.Health == nil && cfg.NewExtender == nil {
		if h, ok := cfg.Extender.(interface{ Health() faults.Health }); ok {
			s.cfg.Health = h.Health
		}
	}
	// Steal groups link the per-shard batchers once all exist; with one
	// shard they stay nil and the worker loops match the unsharded server.
	var extGroup *stealGroup[extJob]
	var mapGroup *stealGroup[mapJob]
	if cfg.Shards > 1 {
		extGroup = &stealGroup[extJob]{}
		if cfg.Aligner != nil || cfg.RefStore != nil {
			mapGroup = &stealGroup[mapJob]{}
		}
	}
	seenStats := make(map[*core.Stats]bool)
	for i := 0; i < cfg.Shards; i++ {
		ext := cfg.Extender
		if cfg.NewExtender != nil {
			ext = cfg.NewExtender(i)
		}
		sh := &shard{id: i, extender: ext, sm: &shardMetrics{}}
		if se, ok := ext.(*core.SeedEx); ok {
			sh.stats = se.Stats
		} else if cs, ok := ext.(interface{ CheckStats() *core.Stats }); ok {
			// Device-backed extenders (the FPGA driver engine) expose their
			// check statistics behind this accessor.
			sh.stats = cs.CheckStats()
		}
		if sh.stats != nil && !seenStats[sh.stats] {
			seenStats[sh.stats] = true
			s.stats = append(s.stats, sh.stats)
		}
		if s.cfg.Health != nil {
			sh.health = s.cfg.Health
		} else if h, ok := ext.(interface{ Health() faults.Health }); ok {
			sh.health = h.Health
		}
		extWork := func() func([]extJob) { return s.extWorker(sh) }
		// Extension batching is shape-binned when the extender's scoring is
		// discoverable: jobs of like SWAR tier and length class coalesce into
		// the same micro-batch, so the packed kernels see dense lane groups
		// even under interleaved mixed-shape traffic (cross-batch scheduling,
		// paper §V-B).
		if sp, ok := ext.(interface{ KernelScoring() align.Scoring }); ok {
			sc := sp.KernelScoring()
			binOf := func(j extJob) int {
				return align.ShapeBin(len(j.req.Q), len(j.req.T), j.req.H0, sc)
			}
			sh.ext = newShardBinnedBatcher(cfg.Batch, s.met, sh.sm, extGroup, i, align.NumShapeBins, binOf, extWork)
		} else {
			sh.ext = newShardBatcher(cfg.Batch, s.met, sh.sm, extGroup, i, extWork)
		}
		if cfg.Aligner != nil || cfg.RefStore != nil {
			sh.maps = newShardBatcher(cfg.MapBatch, s.met, sh.sm, mapGroup, i, func() func([]mapJob) { return s.mapWorker(sh) })
		}
		s.shards = append(s.shards, sh)
	}
	if extGroup != nil {
		exts := make([]*batcher[extJob], len(s.shards))
		for i, sh := range s.shards {
			exts[i] = sh.ext
		}
		extGroup.set(exts)
	}
	if mapGroup != nil {
		maps := make([]*batcher[mapJob], len(s.shards))
		for i, sh := range s.shards {
			maps[i] = sh.maps
		}
		mapGroup.set(maps)
	}
	// The mapping aligner's stats (prefilter counters) merge into the same
	// snapshot the extender sources feed, unless it shares one of theirs.
	if cfg.Aligner != nil && cfg.Aligner.Stats != nil && !seenStats[cfg.Aligner.Stats] {
		seenStats[cfg.Aligner.Stats] = true
		s.stats = append(s.stats, cfg.Aligner.Stats)
	}
	if cfg.Aligner == nil && cfg.MapStats != nil && !seenStats[cfg.MapStats] {
		seenStats[cfg.MapStats] = true
		s.stats = append(s.stats, cfg.MapStats)
	}
	rt, err := newRouter(s.shards, cfg.RoutePolicy)
	if err != nil {
		panic(err)
	}
	s.router = rt
	s.cfg.Build = s.cfg.Build.WithDefaults()
	s.slo = s.newSLO()
	s.slo.Start()
	s.flight = obs.NewFlightRecorder(cfg.Flight)
	if s.flight != nil {
		s.startFlightWatcher()
	}
	s.reg.Register(s.collectProm)
	s.routes()
	return s
}

// Handler returns the HTTP surface:
//
//	POST /v1/extend         JSON batch of extension jobs
//	POST /v1/extend/stream  NDJSON job stream, results in input order
//	POST /v1/map            JSON batch of reads -> SAM records (with -ref)
//	GET  /metrics           operational counters + check + fault statistics
//	GET  /healthz           ok / degraded / draining
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain stops admitting work: job endpoints answer 503 and healthz
// reports draining, while already-admitted jobs keep flowing. Call it
// before (or concurrently with) http.Server.Shutdown so in-flight
// handlers finish against live pipelines.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Close drains the pipelines: every queued job is computed, the worker
// pools exit, and pending handlers observe their results. Call after the
// HTTP server has stopped accepting requests.
func (s *Server) Close() {
	s.StartDrain()
	s.closeOnce.Do(func() {
		s.slo.Close()
		if s.flightStop != nil {
			close(s.flightStop)
			<-s.flightDone
		}
	})
	// Closing shard by shard is safe under work stealing: a peer still
	// draining may steal from a closing shard (helping it finish), and a
	// closing shard's workers finish any stolen batch before exiting on
	// their own closed channel.
	for _, sh := range s.shards {
		sh.ext.Close()
	}
	for _, sh := range s.shards {
		if sh.maps != nil {
			sh.maps.Close()
		}
	}
}

// Metrics exposes the live counters (shared with the /metrics endpoint).
// They aggregate over all shards; ShardSnapshots has the per-shard view.
func (s *Server) Metrics() *Metrics { return s.met }

// ShardSnapshots reads every shard's counters (the /metrics "shards"
// section).
func (s *Server) ShardSnapshots() []ShardSnapshot {
	out := make([]ShardSnapshot, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.snapshot()
	}
	return out
}

// extQueue sums queue depth and capacity across the shards' extension
// batchers — the aggregate the pre-sharding /metrics reported.
func (s *Server) extQueue() (depth, capacity int) {
	for _, sh := range s.shards {
		depth += sh.ext.QueueDepth()
		capacity += sh.ext.QueueCap()
	}
	return depth, capacity
}

// mapQueue mirrors extQueue for the mapping batchers.
func (s *Server) mapQueue() (depth, capacity int) {
	for _, sh := range s.shards {
		if sh.maps != nil {
			depth += sh.maps.QueueDepth()
			capacity += sh.maps.QueueCap()
		}
	}
	return depth, capacity
}

// mapEnabled reports whether the mapping pipeline exists (Config.Aligner
// or Config.RefStore was set).
func (s *Server) mapEnabled() bool { return s.cfg.Aligner != nil || s.cfg.RefStore != nil }

// mapOpts returns the mapping options the pipeline runs under: the
// fixed aligner's when one is set, the configured echo for the
// generation-store path.
func (s *Server) mapOpts() bwamem.Options {
	if s.cfg.Aligner != nil {
		return s.cfg.Aligner.Opts
	}
	return s.cfg.MapOpts
}

// prefilterOn reports whether the mapping pipeline screens chains with
// the pre-alignment filter tier.
func (s *Server) prefilterOn() bool {
	return s.mapEnabled() && s.mapOpts().Prefilter
}

// prefilterThreshold returns the active edit-threshold fraction (0 when
// the tier is off).
func (s *Server) prefilterThreshold() float64 {
	if !s.prefilterOn() {
		return 0
	}
	if th := s.mapOpts().PrefilterThreshold; th > 0 {
		return th
	}
	return bwamem.DefaultPrefilterThreshold
}

// checksSnapshot merges the check statistics of every distinct stats
// source across the shards (shards sharing one extender share one
// source). ok is false when no shard keeps statistics.
func (s *Server) checksSnapshot() (core.StatsSnapshot, bool) {
	if len(s.stats) == 0 {
		return core.StatsSnapshot{}, false
	}
	out := s.stats[0].Snapshot()
	for _, st := range s.stats[1:] {
		snap := st.Snapshot()
		out.Total += snap.Total
		out.Passed += snap.Passed
		out.Reruns += snap.Reruns
		out.ThresholdOnly += snap.ThresholdOnly
		for i := range out.Outcomes {
			out.Outcomes[i] += snap.Outcomes[i]
		}
		out.DeviceFaults += snap.DeviceFaults
		out.DeviceRetries += snap.DeviceRetries
		out.BreakerTrips += snap.BreakerTrips
		out.HostOnly += snap.HostOnly
		out.PrefilterPass += snap.PrefilterPass
		out.PrefilterReject += snap.PrefilterReject
		out.PrefilterRescued += snap.PrefilterRescued
		out.PrefilterFalsePass += snap.PrefilterFalsePass
	}
	return out, true
}

// Registry exposes the Prometheus collector registry, so embedders can
// register additional collectors before the first scrape.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the span tracer (nil when tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.trace }

// pending collects one request's extension results as its jobs complete,
// possibly across several device batches. done closes when the last job
// lands.
type pending struct {
	resp      []core.Response
	remaining atomic.Int32
	expired   atomic.Int32
	done      chan struct{}
}

func newPending(n int) *pending {
	p := &pending{resp: make([]core.Response, n), done: make(chan struct{})}
	p.remaining.Store(int32(n))
	return p
}

func (p *pending) deliver(i int, r core.Response) {
	p.resp[i] = r
	if p.remaining.Add(-1) == 0 {
		close(p.done)
	}
}

// expire completes slot i without computing it: the job's deadline passed
// (or its client left) before a worker reached it. The zero-valued result
// must never be served — handlers check expired after done closes.
func (p *pending) expire(i int) {
	p.expired.Add(1)
	p.deliver(i, core.Response{Tag: i})
}

// abandon discounts the never-submitted tail of a partially admitted
// request (total jobs, only the first submitted entered the queue). If
// the adjustment itself zeroes the counter — every submitted job was
// delivered before it landed — abandon closes done, because no deliver
// remains to do so. The close cannot race deliver: the counter crosses
// zero exactly once across all atomic adds, and whichever add observes
// zero owns the close.
func (p *pending) abandon(submitted, total int) {
	if p.remaining.Add(int32(submitted-total)) == 0 {
		close(p.done)
	}
}

// extJob is one extension queued for micro-batching. sh is the shard
// that admitted the job (set by the router on submit): its accounting
// follows the job even when a peer's worker steals the batch.
type extJob struct {
	ctx context.Context
	req core.Request // Tag carries the job's slot in its pending
	out *pending
	sh  *shard
	tr  obs.Ref // sampled trace handle (zero: not sampled)
	enq time.Time
}

// mapJob is one read queued for the mapping pipeline.
type mapJob struct {
	ctx  context.Context
	name string
	seq  []byte // base codes
	qual []byte // ASCII qualities or nil
	out  *mapPending
	sh   *shard
	tr   obs.Ref
	i    int
	enq  time.Time
}

// mapPending mirrors pending for mapping results.
type mapPending struct {
	res       []MapResult
	remaining atomic.Int32
	expired   atomic.Int32
	done      chan struct{}
}

func newMapPending(n int) *mapPending {
	p := &mapPending{res: make([]MapResult, n), done: make(chan struct{})}
	p.remaining.Store(int32(n))
	return p
}

func (p *mapPending) deliver(i int, r MapResult) {
	p.res[i] = r
	if p.remaining.Add(-1) == 0 {
		close(p.done)
	}
}

// expire and abandon mirror pending; see there for the invariants.
func (p *mapPending) expire(i int, name string) {
	p.expired.Add(1)
	p.deliver(i, MapResult{Name: name})
}

func (p *mapPending) abandon(submitted, total int) {
	if p.remaining.Add(int32(submitted-total)) == 0 {
		close(p.done)
	}
}

// batchResponder is the full-verdict batch path: responses carry rerun
// flags and check outcomes. *core.Checker and the FPGA driver's engine
// sessions both duck-type it.
type batchResponder interface {
	ExtendBatchInto(reqs []core.Request, dst []core.Response) []core.Response
}

// extWorker returns one extension worker's batch processor for sh. The
// worker owns a per-worker session of the shard's extender (its scratch
// memory lives as long as the worker), so a batch runs allocation-free
// through the packed kernels: the speculate-check-rerun workflow for
// checked engines (software checker or device driver), the plain batch
// path otherwise. Stolen peer batches run through this worker's session
// too — the kernels are deterministic, so where a batch runs never shows
// in its results — while each job's admission accounting stays with the
// shard that admitted it (j.sh). With tracing enabled, sampled jobs
// record queue-wait, flush, kernel, check and rerun spans; with it
// disabled every span site is a single nil compare.
func (s *Server) extWorker(sh *shard) func([]extJob) {
	ext := sh.extender
	if se, ok := ext.(align.SessionExtender); ok {
		ext = se.Session()
	}
	chk, _ := ext.(*core.Checker)
	br, _ := ext.(batchResponder)
	// Device-backed sessions expose the batch key of their last device
	// round-trip; kernel spans carry it as a link so a request timeline
	// stitches to the device-layer trace (obs.BatchTraceID).
	keyer, _ := ext.(interface{ LastBatchKey() int64 })
	max := s.cfg.Batch.MaxBatch
	live := make([]extJob, 0, max)
	reqs := make([]core.Request, 0, max)
	jobs := make([]align.Job, 0, max)
	resp := make([]core.Response, max)
	results := make([]align.ExtendResult, max)
	return func(batch []extJob) {
		now := time.Now()
		live, reqs = live[:0], reqs[:0]
		for _, j := range batch {
			wait := now.Sub(j.enq)
			s.met.QueueWait.observe(wait.Nanoseconds())
			j.sh.sm.queueWait.observe(wait.Nanoseconds())
			j.tr.Span(obs.KindQueueWait, j.enq, wait, int64(len(batch)), 0)
			if j.ctx.Err() != nil {
				// The client is gone (deadline or disconnect): skip the
				// compute, but still complete the job so the request's
				// pending resolves.
				s.met.Expired.Add(1)
				j.sh.settleExpired()
				j.out.expire(j.req.Tag)
				continue
			}
			live = append(live, j)
			reqs = append(reqs, j.req)
		}
		if len(live) == 0 {
			return
		}
		// Flush span: batch formation from the oldest job's admission to
		// worker pickup, marked with whether the size threshold (vs the
		// deadline timer) triggered the flush.
		sized := int64(0)
		if len(batch) >= max {
			sized = 1
		}
		fStart := batch[0].enq
		fDur := now.Sub(fStart)
		for _, j := range live {
			j.tr.Span(obs.KindFlush, fStart, fDur, int64(len(batch)), sized)
		}
		// A batch whose jobs were admitted by another shard arrived here by
		// work stealing: flag the event and record where the batch really
		// ran (v1 = victim shard, v2 = thief shard).
		if live[0].sh.id != sh.id {
			for _, j := range live {
				j.tr.Mark(obs.EvSteal)
				j.tr.Span(obs.KindSteal, now, 0, int64(j.sh.id), int64(sh.id))
			}
		}
		switch {
		case chk != nil:
			// Software checker: split the workflow at its phase boundaries
			// (packed speculate+check, then per-job stats/rerun policy,
			// replicating ExtendBatchInto) so kernel, check and rerun each
			// get their own span.
			k0 := time.Now()
			var reps []core.Report
			resp, reps = chk.CheckBatch(reqs, resp[:0])
			kDur := time.Since(k0)
			kEnd := k0.Add(kDur)
			for k, j := range live {
				rep := reps[k]
				if chk.Stats != nil {
					chk.Stats.Record(rep)
				}
				if j.tr.Sampled() {
					tier := align.TierOf(len(reqs[k].Q), len(reqs[k].T), reqs[k].H0, chk.Config.Scoring)
					j.tr.Span(obs.KindKernel, k0, kDur, int64(tier), int64(len(live)))
					pass := int64(0)
					if rep.Pass {
						pass = 1
					}
					j.tr.Span(obs.KindCheck, kEnd, 0, int64(rep.Outcome), pass)
				}
				r := resp[k]
				if r.Rerun {
					r0 := time.Now()
					r.Res = chk.Rerun(reqs[k].Q, reqs[k].T, reqs[k].H0)
					j.tr.Span(obs.KindRerun, r0, time.Since(r0), int64(rep.Outcome), 1)
				}
				j.sh.settleDone()
				j.out.deliver(j.req.Tag, r)
			}
		case br != nil:
			// Device-backed engines run the whole workflow (device compute,
			// integrity checks, overlapped host reruns) behind one call; the
			// driver records its own device/rerun spans under the batch key.
			k0 := time.Now()
			resp = br.ExtendBatchInto(reqs, resp[:0])
			kDur := time.Since(k0)
			kEnd := k0.Add(kDur)
			var bkey int64
			if keyer != nil {
				bkey = keyer.LastBatchKey()
			}
			for k, j := range live {
				r := resp[k]
				if j.tr.Sampled() {
					j.tr.SpanLink(obs.KindKernel, k0, kDur, obs.TierUnknown, int64(len(live)), bkey)
					pass := int64(0)
					if !r.Rerun {
						pass = 1
					}
					j.tr.Span(obs.KindCheck, kEnd, 0, int64(r.Outcome), pass)
				}
				// A rerun without a proven outcome means the driver contained
				// a fault, exhausted retries, or served host-only behind an
				// open breaker: tail-flag the journey.
				if r.Rerun && r.Outcome == core.OutcomeUnknown {
					j.tr.Mark(obs.EvFault)
				}
				j.sh.settleDone()
				j.out.deliver(j.req.Tag, r)
			}
		default:
			jobs = jobs[:0]
			for _, r := range reqs {
				jobs = append(jobs, align.Job{Q: r.Q, T: r.T, H0: r.H0})
			}
			k0 := time.Now()
			results = extendJobsVia(ext, jobs, results[:0])
			kDur := time.Since(k0)
			for k, j := range live {
				j.tr.Span(obs.KindKernel, k0, kDur, obs.TierUnknown, int64(len(live)))
				j.sh.settleDone()
				j.out.deliver(j.req.Tag, core.Response{Tag: j.req.Tag, Res: results[k], Outcome: core.OutcomeUnknown})
			}
		}
		s.met.Completed.Add(int64(len(live)))
	}
}

// extendJobsVia dispatches through the extender's batch path when it has
// one, degrading to a scalar loop otherwise.
func extendJobsVia(ext align.Extender, jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	if be, ok := ext.(align.BatchExtender); ok {
		return be.ExtendJobs(jobs, dst)
	}
	if cap(dst) < len(jobs) {
		dst = make([]align.ExtendResult, len(jobs))
	}
	dst = dst[:len(jobs)]
	for i := range jobs {
		dst[i] = ext.Extend(jobs[i].Q, jobs[i].T, jobs[i].H0)
	}
	return dst
}

// mapWorker returns one mapping worker's batch processor for sh: a
// reentrant bwamem.Mapper session applied to each read of the batch (the
// extensions inside each read still run through the extender's packed
// batch path).
// With a RefStore configured, the worker follows the generation store:
// each batch acquires a refcounted handle on the current generation
// (held for the batch, so a concurrent reload cannot unmap the memory
// the batch is reading) and rebuilds its mapper session only when the
// generation actually changed. Old generations drain batch-by-batch —
// a reload storm never stalls or fails a single read.
func (s *Server) mapWorker(sh *shard) func([]mapJob) {
	var m *bwamem.Mapper
	store := s.cfg.RefStore
	if store == nil {
		m = s.cfg.Aligner.NewMapper()
	}
	var genID uint64
	return func(batch []mapJob) {
		now := time.Now()
		reloadOverlap := false
		if store != nil {
			g := store.Acquire()
			if g == nil {
				// The store closed under us (shutdown): resolve the batch
				// as expired so every pending completes.
				for _, j := range batch {
					s.met.Expired.Add(1)
					j.sh.settleExpired()
					j.out.expire(j.i, j.name)
				}
				return
			}
			defer g.Release()
			// A reload in flight right now, or a generation swap observed
			// since this worker's last batch, tail-flags the batch's
			// requests as overlapping an index reload.
			reloadOverlap = store.Reloading()
			if m == nil || g.ID() != genID {
				reloadOverlap = reloadOverlap || m != nil
				m = s.cfg.NewAligner(g.Ref(), g.Index()).NewMapper()
				genID = g.ID()
			}
		}
		if len(batch) > 0 && batch[0].sh.id != sh.id {
			for _, j := range batch {
				j.tr.Mark(obs.EvSteal)
				j.tr.Span(obs.KindSteal, now, 0, int64(j.sh.id), int64(sh.id))
			}
		}
		for _, j := range batch {
			if reloadOverlap {
				j.tr.Mark(obs.EvReloadOverlap)
			}
			wait := now.Sub(j.enq)
			s.met.QueueWait.observe(wait.Nanoseconds())
			j.sh.sm.queueWait.observe(wait.Nanoseconds())
			j.tr.Span(obs.KindQueueWait, j.enq, wait, int64(len(batch)), 0)
			if j.ctx.Err() != nil {
				s.met.Expired.Add(1)
				j.sh.settleExpired()
				j.out.expire(j.i, j.name)
				continue
			}
			k0 := time.Now()
			rec, al := m.Map(j.name, j.seq, j.qual)
			kDur := time.Since(k0)
			// The map kernel span links the index generation it computed
			// against (negated, so generation links can never collide with
			// the positive device batch keys the stitcher resolves), and one
			// timeline shows a request straddling a swap.
			j.tr.SpanLink(obs.KindKernel, k0, kDur, obs.TierUnknown, 1, -int64(genID))
			if al.PrefilterPass+al.PrefilterReject > 0 {
				j.tr.Span(obs.KindPrefilter, k0.Add(kDur), 0,
					int64(al.PrefilterPass), int64(al.PrefilterReject))
			}
			if al.RescueRounds > 0 {
				j.tr.Mark(obs.EvRescue)
				j.tr.Span(obs.KindRescue, k0.Add(kDur), 0,
					int64(al.PrefilterRescued), int64(al.RescueRounds))
			}
			j.sh.settleDone()
			j.out.deliver(j.i, MapResult{
				Name:   j.name,
				Mapped: al.Mapped,
				RName:  rec.RName,
				Pos:    rec.Pos,
				Rev:    al.Rev,
				MapQ:   al.MapQ,
				Score:  al.Score,
				Cigar:  al.Cigar.String(),
				Sam:    rec.String(),
			})
			s.met.Completed.Add(1)
		}
	}
}

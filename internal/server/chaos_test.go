package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/driver"
	"seedex/internal/faults"
	"seedex/internal/genome"
)

// chaosEngine builds a device-backed extender with the given chaos
// config and a fast breaker, sized for the micro-batcher's batches.
func chaosEngine(fc faults.Config) *driver.Engine {
	cfg := driver.DefaultConfig()
	cfg.BatchSize = 32
	cfg.TimeScale = 0.01
	cfg.MaxAttempts = 2
	cfg.RetryBackoff = 20 * time.Microsecond
	cfg.DeviceTimeout = 5 * time.Millisecond
	cfg.Faults = fc
	cfg.Faults.StallFor = 20 * time.Millisecond
	cfg.Breaker = faults.BreakerConfig{
		Window: 8, MinSamples: 2, TripRatio: 0.5,
		Cooldown: 30 * time.Millisecond, ProbeSuccesses: 2,
	}
	return driver.NewEngine(cfg)
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestServerBreakerVisibility drives the whole degradation story through
// the HTTP surface: a device-backed server under sustained core failures
// keeps serving exact results, trips its breaker into host-only mode —
// observable in /metrics (faults section) and /healthz (degraded, still
// 200) — and once the fault clears, half-open probing restores the
// device and health returns to ok.
func TestServerBreakerVisibility(t *testing.T) {
	eng := chaosEngine(faults.Config{Seed: 5, CoreFail: 1})
	s, ts := newTestServer(t, Config{
		Extender: eng,
		Batch:    BatcherConfig{MaxBatch: 32, FlushInterval: time.Millisecond, Workers: 2},
	})

	// Phase 1: every device attempt core-fails. Results must still match
	// the full-band kernel (host containment), and the breaker must trip.
	jobs := testProblems(96, 120, 6)
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend under chaos: status %d", resp.StatusCode)
	}
	var out ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	sc := align.DefaultScoring()
	for i, j := range jobs {
		want := align.Extend(genome.Encode(j.Query), genome.Encode(j.Target), j.H0, sc)
		got := out.Results[i]
		if got.Local != want.Local || got.Global != want.Global {
			t.Fatalf("job %d under chaos: served %+v, kernel %+v", i, got, want)
		}
	}

	var met metricsBody
	if code := getJSON(t, ts.URL+"/metrics", &met); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if met.Faults == nil {
		t.Fatal("/metrics has no faults section for a device-backed server")
	}
	if met.Faults.Trips == 0 || met.Faults.HostOnly == 0 {
		t.Fatalf("breaker not visible in /metrics: %+v", met.Faults)
	}
	if met.Checks == nil || met.Checks.HostOnly == 0 {
		t.Fatalf("check stats not picked up from the engine: %+v", met.Checks)
	}

	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200 (traffic is still served), got %d", code)
	}
	if health["status"] != "degraded" {
		t.Fatalf("healthz status %q, want degraded", health["status"])
	}

	// Phase 2: clear the fault, wait out the cooldown, push probe traffic.
	eng.Device().Injector().SetRate(faults.ClassCoreFail, 0)
	time.Sleep(35 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2 := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: testProblems(64, 100, 7)})
		r2.Body.Close()
		if eng.Device().Breaker().State() == faults.Closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after recovery: %v", eng.Device().Breaker().State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("recovered healthz: %d %q", code, health["status"])
	}

	// Draining outranks everything: 503 so the LB pulls the instance.
	s.StartDrain()
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusServiceUnavailable || health["status"] != "draining" {
		t.Fatalf("draining healthz: %d %q", code, health["status"])
	}
}

// TestServerChaosEquivalence floods a device-backed server with mixed
// fault classes (kept below the breaker threshold is not required —
// containment must hold either way) and checks every served result
// against the full-band kernel.
func TestServerChaosEquivalence(t *testing.T) {
	eng := chaosEngine(faults.Uniform(1234, 0.05))
	_, ts := newTestServer(t, Config{
		Extender: eng,
		Batch:    BatcherConfig{MaxBatch: 32, FlushInterval: time.Millisecond, Workers: 4},
	})
	jobs := testProblems(256, 110, 8)
	resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: jobs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	sc := align.DefaultScoring()
	for i, j := range jobs {
		want := align.Extend(genome.Encode(j.Query), genome.Encode(j.Target), j.H0, sc)
		got := out.Results[i]
		if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Fatalf("job %d: served %+v, kernel %+v", i, got, want)
		}
	}
	if eng.Device().Injector().Counters().Total() == 0 {
		t.Fatal("chaos server run injected nothing")
	}
}

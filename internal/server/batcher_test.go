package server

import (
	"sync"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherBackpressure pins the admission contract deterministically:
// with the single worker blocked, the pipeline's finite capacity (queue +
// collector batch + batch channel) fills and Submit refuses with
// ErrQueueFull instead of blocking.
func TestBatcherBackpressure(t *testing.T) {
	release := make(chan struct{})
	var processed atomic.Int64
	met := &Metrics{}
	b := newBatcher(BatcherConfig{MaxBatch: 2, FlushInterval: 50 * time.Microsecond, QueueCap: 2, Workers: 1}, met,
		func() func([]int) {
			return func(batch []int) {
				<-release
				processed.Add(int64(len(batch)))
			}
		})

	// Fill until refusal; the capacity bound is queue(2) + one assembling
	// batch(2) + one queued batch(2) + the in-flight batch(2).
	accepted := 0
	var err error
	for i := 0; i < 100; i++ {
		if err = b.Submit(i); err != nil {
			break
		}
		accepted++
		time.Sleep(time.Millisecond) // let the collector pull and flush
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull after %d accepts, got %v", accepted, err)
	}
	if accepted > 10 {
		t.Fatalf("pipeline absorbed %d jobs; capacity bound is broken", accepted)
	}

	// Release the worker: Close must drain every accepted job.
	close(release)
	b.Close()
	if got := processed.Load(); got != int64(accepted) {
		t.Fatalf("drained %d jobs, accepted %d", got, accepted)
	}
	if err := b.Submit(1); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Close = %v, want ErrDraining", err)
	}
	if met.Batches.Load() == 0 {
		t.Fatal("no batches recorded")
	}
}

// TestBatcherSizeTrigger proves the size trigger flushes without waiting
// for the deadline: MaxBatch jobs submitted at once produce a full batch
// well before the (long) flush interval.
func TestBatcherSizeTrigger(t *testing.T) {
	done := make(chan int, 16)
	met := &Metrics{}
	b := newBatcher(BatcherConfig{MaxBatch: 8, FlushInterval: time.Hour, QueueCap: 64, Workers: 1}, met,
		func() func([]int) {
			return func(batch []int) { done <- len(batch) }
		})
	defer b.Close()
	for i := 0; i < 8; i++ {
		if err := b.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-done:
		if n != 8 {
			t.Fatalf("batch size %d, want 8", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("size trigger did not flush")
	}
}

// TestBatcherOpportunistic proves FlushOpportunistic never waits: a lone
// job flushes immediately with both triggers effectively off.
func TestBatcherOpportunistic(t *testing.T) {
	done := make(chan int, 1)
	b := newBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: FlushOpportunistic, QueueCap: 64, Workers: 1}, &Metrics{},
		func() func([]int) {
			return func(batch []int) { done <- len(batch) }
		})
	defer b.Close()
	if err := b.Submit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("batch size %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("opportunistic collector never flushed a lone job")
	}
}

// TestFlushSentinel pins the FlushInterval sentinel scheme: zero selects
// the 200µs default and FlushOpportunistic survives every defaults layer,
// including the MapBatch inheritance in server.Config.
func TestFlushSentinel(t *testing.T) {
	if got := (BatcherConfig{}).withDefaults().FlushInterval; got != 200*time.Microsecond {
		t.Fatalf("zero FlushInterval defaulted to %v, want 200µs", got)
	}
	if got := (BatcherConfig{FlushInterval: FlushOpportunistic}).withDefaults().FlushInterval; got >= 0 {
		t.Fatalf("FlushOpportunistic rewritten to %v", got)
	}
	cfg := Config{Batch: BatcherConfig{FlushInterval: FlushOpportunistic}}.withDefaults()
	if cfg.Batch.FlushInterval >= 0 {
		t.Fatalf("Config rewrote opportunistic Batch flush to %v", cfg.Batch.FlushInterval)
	}
	if cfg.MapBatch.FlushInterval >= 0 {
		t.Fatalf("MapBatch did not inherit the opportunistic flush: %v", cfg.MapBatch.FlushInterval)
	}
}

// TestBatcherDeadlineTrigger proves a lone job flushes after the
// interval, not after MaxBatch.
func TestBatcherDeadlineTrigger(t *testing.T) {
	done := make(chan int, 1)
	b := newBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: 2 * time.Millisecond, QueueCap: 64, Workers: 1}, &Metrics{},
		func() func([]int) {
			return func(batch []int) { done <- len(batch) }
		})
	defer b.Close()
	if err := b.Submit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("batch size %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline trigger did not flush")
	}
}

// TestBinnedBatcherHomogeneousFlush proves the binned collector's size
// trigger: MaxBatch jobs of one shape bin flush together as one
// homogeneous batch even when other bins hold pending work.
func TestBinnedBatcherHomogeneousFlush(t *testing.T) {
	done := make(chan []int, 4)
	b := newBinnedBatcher(BatcherConfig{MaxBatch: 8, FlushInterval: time.Hour, QueueCap: 64, Workers: 1}, &Metrics{},
		4, func(j int) int { return j % 4 },
		func() func([]int) {
			return func(batch []int) { done <- append([]int(nil), batch...) }
		})
	defer b.Close()
	// Three stragglers in other bins, then a full bin-2 load.
	for _, j := range []int{1, 3, 5} {
		if err := b.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := b.Submit(2 + 4*i); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case batch := <-done:
		if len(batch) != 8 {
			t.Fatalf("batch size %d, want 8", len(batch))
		}
		for _, j := range batch {
			if j%4 != 2 {
				t.Fatalf("bin-2 batch contains job %d from bin %d", j, j%4)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("full bin did not flush")
	}
	if len(done) != 0 {
		t.Fatal("stragglers flushed without a trigger")
	}
}

// TestBinnedBatcherDeadlineFlushAll proves the deadline trigger drains
// every bin, concatenated in bin order: no job waits longer than one
// FlushInterval just because its bin is cold.
func TestBinnedBatcherDeadlineFlushAll(t *testing.T) {
	done := make(chan []int, 4)
	b := newBinnedBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: 2 * time.Millisecond, QueueCap: 64, Workers: 1}, &Metrics{},
		4, func(j int) int { return j % 4 },
		func() func([]int) {
			return func(batch []int) { done <- append([]int(nil), batch...) }
		})
	defer b.Close()
	for _, j := range []int{3, 0, 2, 1, 7} { // bins 3,0,2,1,3
		if err := b.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case batch := <-done:
		want := []int{0, 1, 2, 3, 7} // bin order 0,1,2,3 with 3 and 7 adjacent
		if len(batch) != len(want) {
			t.Fatalf("batch %v, want %v", batch, want)
		}
		for i := range want {
			if batch[i] != want[i] {
				t.Fatalf("batch %v not in bin order, want %v", batch, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not flush the bins")
	}
}

// TestBinnedBatcherMixedRace hammers the binned collector from many
// producers with jobs spread across every bin while draining through
// several workers — the mixed-bin scheduling race test (run under
// -race via make race). Every submitted job must come out exactly once.
func TestBinnedBatcherMixedRace(t *testing.T) {
	const producers, perProducer, bins = 8, 200, 16
	var got [producers * perProducer]atomic.Int32
	var processed atomic.Int64
	b := newBinnedBatcher(BatcherConfig{MaxBatch: 16, FlushInterval: 100 * time.Microsecond, QueueCap: 4096, Workers: 4}, &Metrics{},
		bins, func(j int) int { return j % bins },
		func() func([]int) {
			return func(batch []int) {
				for _, j := range batch {
					got[j].Add(1)
					processed.Add(1)
				}
			}
		})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				j := p*perProducer + i
				for {
					err := b.Submit(j)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit(%d): %v", j, err)
						return
					}
					time.Sleep(10 * time.Microsecond)
				}
				_ = b.QueueDepth() // concurrent depth reads race with the collector
			}
		}(p)
	}
	wg.Wait()
	b.Close()
	if processed.Load() != producers*perProducer {
		t.Fatalf("processed %d jobs, want %d", processed.Load(), producers*perProducer)
	}
	for j := range got {
		if n := got[j].Load(); n != 1 {
			t.Fatalf("job %d processed %d times", j, n)
		}
	}
}

// TestBinnedBatcherOpportunistic proves the opportunistic binned
// collector flushes immediately (no deadline wait) and still bin-sorts
// what it drained.
func TestBinnedBatcherOpportunistic(t *testing.T) {
	done := make(chan []int, 4)
	b := newBinnedBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: FlushOpportunistic, QueueCap: 64, Workers: 1}, &Metrics{},
		4, func(j int) int { return j % 4 },
		func() func([]int) {
			return func(batch []int) { done <- append([]int(nil), batch...) }
		})
	defer b.Close()
	if err := b.Submit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-done:
		if len(batch) != 1 || batch[0] != 1 {
			t.Fatalf("batch %v, want [1]", batch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("opportunistic binned collector never flushed a lone job")
	}
}

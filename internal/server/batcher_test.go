package server

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherBackpressure pins the admission contract deterministically:
// with the single worker blocked, the pipeline's finite capacity (queue +
// collector batch + batch channel) fills and Submit refuses with
// ErrQueueFull instead of blocking.
func TestBatcherBackpressure(t *testing.T) {
	release := make(chan struct{})
	var processed atomic.Int64
	met := &Metrics{}
	b := newBatcher(BatcherConfig{MaxBatch: 2, FlushInterval: 50 * time.Microsecond, QueueCap: 2, Workers: 1}, met,
		func() func([]int) {
			return func(batch []int) {
				<-release
				processed.Add(int64(len(batch)))
			}
		})

	// Fill until refusal; the capacity bound is queue(2) + one assembling
	// batch(2) + one queued batch(2) + the in-flight batch(2).
	accepted := 0
	var err error
	for i := 0; i < 100; i++ {
		if err = b.Submit(i); err != nil {
			break
		}
		accepted++
		time.Sleep(time.Millisecond) // let the collector pull and flush
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull after %d accepts, got %v", accepted, err)
	}
	if accepted > 10 {
		t.Fatalf("pipeline absorbed %d jobs; capacity bound is broken", accepted)
	}

	// Release the worker: Close must drain every accepted job.
	close(release)
	b.Close()
	if got := processed.Load(); got != int64(accepted) {
		t.Fatalf("drained %d jobs, accepted %d", got, accepted)
	}
	if err := b.Submit(1); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Close = %v, want ErrDraining", err)
	}
	if met.Batches.Load() == 0 {
		t.Fatal("no batches recorded")
	}
}

// TestBatcherSizeTrigger proves the size trigger flushes without waiting
// for the deadline: MaxBatch jobs submitted at once produce a full batch
// well before the (long) flush interval.
func TestBatcherSizeTrigger(t *testing.T) {
	done := make(chan int, 16)
	met := &Metrics{}
	b := newBatcher(BatcherConfig{MaxBatch: 8, FlushInterval: time.Hour, QueueCap: 64, Workers: 1}, met,
		func() func([]int) {
			return func(batch []int) { done <- len(batch) }
		})
	defer b.Close()
	for i := 0; i < 8; i++ {
		if err := b.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-done:
		if n != 8 {
			t.Fatalf("batch size %d, want 8", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("size trigger did not flush")
	}
}

// TestBatcherOpportunistic proves FlushOpportunistic never waits: a lone
// job flushes immediately with both triggers effectively off.
func TestBatcherOpportunistic(t *testing.T) {
	done := make(chan int, 1)
	b := newBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: FlushOpportunistic, QueueCap: 64, Workers: 1}, &Metrics{},
		func() func([]int) {
			return func(batch []int) { done <- len(batch) }
		})
	defer b.Close()
	if err := b.Submit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("batch size %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("opportunistic collector never flushed a lone job")
	}
}

// TestFlushSentinel pins the FlushInterval sentinel scheme: zero selects
// the 200µs default and FlushOpportunistic survives every defaults layer,
// including the MapBatch inheritance in server.Config.
func TestFlushSentinel(t *testing.T) {
	if got := (BatcherConfig{}).withDefaults().FlushInterval; got != 200*time.Microsecond {
		t.Fatalf("zero FlushInterval defaulted to %v, want 200µs", got)
	}
	if got := (BatcherConfig{FlushInterval: FlushOpportunistic}).withDefaults().FlushInterval; got >= 0 {
		t.Fatalf("FlushOpportunistic rewritten to %v", got)
	}
	cfg := Config{Batch: BatcherConfig{FlushInterval: FlushOpportunistic}}.withDefaults()
	if cfg.Batch.FlushInterval >= 0 {
		t.Fatalf("Config rewrote opportunistic Batch flush to %v", cfg.Batch.FlushInterval)
	}
	if cfg.MapBatch.FlushInterval >= 0 {
		t.Fatalf("MapBatch did not inherit the opportunistic flush: %v", cfg.MapBatch.FlushInterval)
	}
}

// TestBatcherDeadlineTrigger proves a lone job flushes after the
// interval, not after MaxBatch.
func TestBatcherDeadlineTrigger(t *testing.T) {
	done := make(chan int, 1)
	b := newBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: 2 * time.Millisecond, QueueCap: 64, Workers: 1}, &Metrics{},
		func() func([]int) {
			return func(batch []int) { done <- len(batch) }
		})
	defer b.Close()
	if err := b.Submit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("batch size %d, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline trigger did not flush")
	}
}

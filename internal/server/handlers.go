package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"io"

	"seedex/internal/core"
	"seedex/internal/faults"
	"seedex/internal/genome"
	"seedex/internal/obs"
	"seedex/internal/refstore"
)

// ExtendJob is one extension problem in the request JSON: align query
// against target (ASCII bases) starting from seed score h0.
type ExtendJob struct {
	Query  string `json:"query"`
	Target string `json:"target"`
	H0     int    `json:"h0"`
}

// ExtendRequest is the POST /v1/extend body.
type ExtendRequest struct {
	Jobs []ExtendJob `json:"jobs"`
	// DeadlineMs, when positive, bounds this request's service time; jobs
	// still queued when it passes are skipped and the request answers 504.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// ExtendResult mirrors align.ExtendResult over the wire, plus the SeedEx
// rerun flag.
type ExtendResult struct {
	Local   int   `json:"local"`
	LocalT  int   `json:"local_t"`
	LocalQ  int   `json:"local_q"`
	Global  int   `json:"global"`
	GlobalT int   `json:"global_t"`
	Cells   int64 `json:"cells"`
	// Rerun reports that the banded result could not be proven optimal and
	// the response came from the full-band rerun (checked engines only).
	Rerun bool `json:"rerun,omitempty"`
}

// ExtendResponse is the POST /v1/extend reply.
type ExtendResponse struct {
	Results []ExtendResult `json:"results"`
}

// MapRead is one read in the POST /v1/map body (ASCII bases; qual
// optional).
type MapRead struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
	Qual string `json:"qual,omitempty"`
}

// MapRequest is the POST /v1/map body.
type MapRequest struct {
	Reads      []MapRead `json:"reads"`
	DeadlineMs int       `json:"deadline_ms,omitempty"`
}

// MapResult is one mapped read in the reply.
type MapResult struct {
	Name   string `json:"name"`
	Mapped bool   `json:"mapped"`
	RName  string `json:"rname,omitempty"`
	Pos    int    `json:"pos,omitempty"` // 1-based, SAM convention
	Rev    bool   `json:"rev,omitempty"`
	MapQ   int    `json:"mapq"`
	Score  int    `json:"score"`
	Cigar  string `json:"cigar,omitempty"`
	Sam    string `json:"sam"`
}

// MapResponse is the POST /v1/map reply.
type MapResponse struct {
	Results []MapResult `json:"results"`
}

type errorBody struct {
	Error string `json:"error"`
	// RequestID echoes the request's X-Request-Id, so a 429/504 line in a
	// client log correlates with the server's trace of the same request.
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/extend", s.handleExtend)
	s.mux.HandleFunc("POST /v1/extend/stream", s.handleExtendStream)
	s.mux.HandleFunc("POST /v1/map", s.handleMap)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/slow", s.handleTracesSlow)
	s.mux.HandleFunc("GET /debug/journeys", s.handleJourneys)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
}

// countFailure tallies the statuses the availability SLO counts as
// failed serving (client errors like 400/413 are the caller's fault and
// don't burn the availability budget; 413 still tail-retains).
func (s *Server) countFailure(status int) {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		s.met.Failed.Add(1)
	}
}

// requestID resolves the request's id (client-supplied or minted) and
// echoes it on the response before anything is written.
func requestID(w http.ResponseWriter, r *http.Request) (uint64, string) {
	rid, ridStr := obs.RequestID(r.Header.Get("X-Request-Id"))
	w.Header().Set("X-Request-Id", ridStr)
	return rid, ridStr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, rid string, format string, args ...any) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), RequestID: rid})
}

// admitError maps a Submit error onto its HTTP reply and counters,
// returning the status it wrote.
func (s *Server) admitError(w http.ResponseWriter, rid string, err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.met.Rejected.Add(1)
		s.writeError(w, http.StatusTooManyRequests, rid, "admission queue full, retry later")
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		s.met.Draining.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, rid, "server is draining")
		return http.StatusServiceUnavailable
	default:
		s.writeError(w, http.StatusInternalServerError, rid, "%v", err)
		return http.StatusInternalServerError
	}
}

// decodeBody parses one JSON request body, bounded by MaxBodyBytes so an
// oversized (or oversized-malformed) body is refused with 413 instead of
// being allocated whole before validation. It writes the error reply
// itself and reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, rid string, v any) (bool, int) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.met.BadInput.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, rid, "request body larger than %d bytes", tooBig.Limit)
			return false, http.StatusRequestEntityTooLarge
		}
		s.writeError(w, http.StatusBadRequest, rid, "bad request body: %v", err)
		return false, http.StatusBadRequest
	}
	return true, http.StatusOK
}

// requestContext applies the request's JSON deadline to its context.
func requestContext(r *http.Request, deadlineMs int) (context.Context, context.CancelFunc) {
	if deadlineMs > 0 {
		return context.WithTimeout(r.Context(), time.Duration(deadlineMs)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// validateJob bounds one extension job's shape.
func (s *Server) validateJob(j ExtendJob) error {
	if j.Query == "" || j.Target == "" {
		return fmt.Errorf("query and target must be non-empty")
	}
	if len(j.Query) > s.cfg.MaxSeqLen || len(j.Target) > s.cfg.MaxSeqLen {
		return fmt.Errorf("sequence longer than %d bp", s.cfg.MaxSeqLen)
	}
	if j.H0 < 0 {
		return fmt.Errorf("h0 must be non-negative")
	}
	return nil
}

func wireResult(r core.Response) ExtendResult {
	return ExtendResult{
		Local:   r.Res.Local,
		LocalT:  r.Res.LocalT,
		LocalQ:  r.Res.LocalQ,
		Global:  r.Res.Global,
		GlobalT: r.Res.GlobalT,
		Cells:   r.Res.Cells,
		Rerun:   r.Rerun,
	}
}

// handleExtend runs one JSON batch of extension jobs through the
// micro-batcher. Independent requests coalesce into shared device
// batches; each request waits only for its own jobs.
func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	s.met.Requests.Add(1)
	start := time.Now()
	rid, ridStr := requestID(w, r)
	tr := s.trace.Sample(rid)
	status, njobs := http.StatusOK, 0
	defer func() {
		s.countFailure(status)
		s.trace.RequestDone(tr, rid, start, time.Since(start), int64(njobs), int64(status))
	}()
	if s.draining.Load() {
		s.met.Draining.Add(1)
		status = http.StatusServiceUnavailable
		s.writeError(w, status, ridStr, "server is draining")
		return
	}
	var req ExtendRequest
	if ok, st := s.decodeBody(w, r, ridStr, &req); !ok {
		status = st
		return
	}
	njobs = len(req.Jobs)
	if len(req.Jobs) == 0 || len(req.Jobs) > s.cfg.MaxJobsPerRequest {
		s.met.BadInput.Add(1)
		status = http.StatusBadRequest
		s.writeError(w, status, ridStr, "jobs must hold 1..%d entries", s.cfg.MaxJobsPerRequest)
		return
	}
	for i, j := range req.Jobs {
		if err := s.validateJob(j); err != nil {
			s.met.BadInput.Add(1)
			status = http.StatusBadRequest
			s.writeError(w, status, ridStr, "job %d: %v", i, err)
			return
		}
	}
	ctx, cancel := requestContext(r, req.DeadlineMs)
	defer cancel()

	p := newPending(len(req.Jobs))
	// One routing decision per request: all its jobs share a shard (and so
	// a flush deadline), keyed by the first job's reference region. A full
	// shard queue fails individual jobs over to peers inside submitExt.
	sh := s.router.pick(routeKey(req.Jobs[0].Target))
	var admit error
	submitted := 0
	for i, j := range req.Jobs {
		job := extJob{
			ctx: ctx,
			req: core.Request{Q: genome.Encode(j.Query), T: genome.Encode(j.Target), H0: j.H0, Tag: i},
			out: p,
			tr:  tr,
			enq: time.Now(),
		}
		if err := s.router.submitExt(sh, job); err != nil {
			admit = err
			break
		}
		s.met.Accepted.Add(1)
		submitted++
	}
	if admit != nil {
		// Refuse the request as a whole: partial results are never served.
		// Jobs already in flight still write into p, so wait them out;
		// abandon closes done itself if they all landed before it ran.
		if submitted > 0 {
			p.abandon(submitted, len(req.Jobs))
			<-p.done
		}
		status = s.admitError(w, ridStr, admit)
		return
	}
	select {
	case <-p.done:
		// Expired jobs resolve as zero-valued placeholders; when the
		// deadline and the last delivery race, this arm can win over
		// ctx.Done(). Never serve those zeros as 200.
		if n := p.expired.Load(); n > 0 {
			status = http.StatusGatewayTimeout
			s.writeError(w, status, ridStr, "deadline exceeded: %d of %d jobs expired before compute", n, len(req.Jobs))
			return
		}
	case <-ctx.Done():
		// Jobs are still in flight: workers may yet write spans, so the
		// journey buffer must not be recycled for another request.
		tr.Detach()
		status = http.StatusGatewayTimeout
		s.writeError(w, status, ridStr, "deadline exceeded with jobs in flight")
		return
	}
	resp := ExtendResponse{Results: make([]ExtendResult, len(p.resp))}
	for i, r := range p.resp {
		resp.Results[i] = wireResult(r)
	}
	s.met.observeLatency(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// handleExtendStream is the pipelined NDJSON form: one ExtendJob per
// input line, one ExtendResult per output line, in input order. The
// stream window keeps jobs flowing into the micro-batcher while earlier
// results are still being written, so a single client saturates the
// batch pipeline without batching client-side.
func (s *Server) handleExtendStream(w http.ResponseWriter, r *http.Request) {
	s.met.Requests.Add(1)
	start := time.Now()
	rid, ridStr := requestID(w, r)
	tr := s.trace.Sample(rid)
	var lines int64
	defer func() {
		s.trace.RequestDone(tr, rid, start, time.Since(start), lines, http.StatusOK)
	}()
	if s.draining.Load() {
		s.met.Draining.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, ridStr, "server is draining")
		return
	}
	ctx := r.Context()
	// Bound the stream like the batch endpoints; hitting the cap surfaces
	// as a decode error on the trailing error line.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := bufio.NewWriter(w)
	defer out.Flush()
	enc := json.NewEncoder(out)

	// window holds the pendings of submitted jobs in input order.
	const streamWindow = 256
	window := make(chan *pending, streamWindow)
	errs := make(chan error, 1)
	// orphaned: the reader returned with a submitted job it never handed
	// to the drain loop (context cancelled mid-stream). Set before the
	// deferred close(window), so the drain loop observes it after range.
	var orphaned atomic.Bool
	go func() {
		defer close(window)
		dec := json.NewDecoder(r.Body)
		for i := 0; ; i++ {
			var j ExtendJob
			if err := dec.Decode(&j); err != nil {
				if !errors.Is(err, io.EOF) {
					// Non-EOF decode error: report it after drained results.
					select {
					case errs <- fmt.Errorf("line %d: %v", i, err):
					default:
					}
				}
				return
			}
			if err := s.validateJob(j); err != nil {
				s.met.BadInput.Add(1)
				select {
				case errs <- fmt.Errorf("line %d: %v", i, err):
				default:
				}
				return
			}
			p := newPending(1)
			job := extJob{
				ctx: ctx,
				req: core.Request{Q: genome.Encode(j.Query), T: genome.Encode(j.Target), H0: j.H0},
				out: p,
				tr:  tr,
				enq: time.Now(),
			}
			// Streamed jobs route individually: a long stream spreads over
			// the pool under load-based policies, and sticks to its region's
			// shard under consistent hashing.
			if err := s.router.submitWaitExt(ctx, routeKey(j.Target), job); err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
			s.met.Accepted.Add(1)
			select {
			case window <- p:
			case <-ctx.Done():
				// Still deliver the pending so the job completion has a
				// home; the writer is gone.
				orphaned.Store(true)
				return
			}
		}
	}()

	for p := range window {
		select {
		case <-p.done:
		case <-ctx.Done():
			// Undrained stream jobs may still record spans: keep the
			// journey buffer out of the reuse pool.
			tr.Detach()
			return
		}
		if p.expired.Load() > 0 {
			// The job expired in queue: the stream context is gone, and the
			// placeholder result must not be written as real scores.
			tr.Detach()
			return
		}
		if err := enc.Encode(wireResult(p.resp[0])); err != nil {
			tr.Detach()
			return
		}
		lines++
		if len(window) == 0 {
			out.Flush()
		}
	}
	if orphaned.Load() {
		tr.Detach()
	}
	select {
	case err := <-errs:
		enc.Encode(errorBody{Error: err.Error(), RequestID: ridStr})
	default:
	}
}

// handleMap runs one JSON batch of reads through the mapping pipeline.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	s.met.Requests.Add(1)
	start := time.Now()
	rid, ridStr := requestID(w, r)
	tr := s.trace.Sample(rid)
	status, nreads := http.StatusOK, 0
	defer func() {
		s.countFailure(status)
		s.trace.RequestDone(tr, rid, start, time.Since(start), int64(nreads), int64(status))
	}()
	if !s.mapEnabled() {
		status = http.StatusNotImplemented
		s.writeError(w, status, ridStr, "mapping endpoint disabled: server started without a reference")
		return
	}
	if s.draining.Load() {
		s.met.Draining.Add(1)
		status = http.StatusServiceUnavailable
		s.writeError(w, status, ridStr, "server is draining")
		return
	}
	var req MapRequest
	if ok, st := s.decodeBody(w, r, ridStr, &req); !ok {
		status = st
		return
	}
	nreads = len(req.Reads)
	if len(req.Reads) == 0 || len(req.Reads) > s.cfg.MaxJobsPerRequest {
		s.met.BadInput.Add(1)
		status = http.StatusBadRequest
		s.writeError(w, status, ridStr, "reads must hold 1..%d entries", s.cfg.MaxJobsPerRequest)
		return
	}
	for i, rd := range req.Reads {
		if rd.Seq == "" || len(rd.Seq) > s.cfg.MaxSeqLen {
			s.met.BadInput.Add(1)
			status = http.StatusBadRequest
			s.writeError(w, status, ridStr, "read %d: seq must hold 1..%d bases", i, s.cfg.MaxSeqLen)
			return
		}
		if rd.Qual != "" && len(rd.Qual) != len(rd.Seq) {
			s.met.BadInput.Add(1)
			status = http.StatusBadRequest
			s.writeError(w, status, ridStr, "read %d: qual length %d != seq length %d", i, len(rd.Qual), len(rd.Seq))
			return
		}
	}
	ctx, cancel := requestContext(r, req.DeadlineMs)
	defer cancel()

	p := newMapPending(len(req.Reads))
	// Mapping requests route like extension requests: one decision per
	// request, keyed by the first read (the read sequence stands in for
	// the region it will map to).
	sh := s.router.pick(routeKey(req.Reads[0].Seq))
	var admit error
	submitted := 0
	for i, rd := range req.Reads {
		var qual []byte
		if rd.Qual != "" {
			qual = []byte(rd.Qual)
		}
		job := mapJob{ctx: ctx, name: rd.Name, seq: genome.Encode(rd.Seq), qual: qual, out: p, tr: tr, i: i, enq: time.Now()}
		if err := s.router.submitMap(sh, job); err != nil {
			admit = err
			break
		}
		s.met.Accepted.Add(1)
		submitted++
	}
	if admit != nil {
		// Mirrors handleExtend: wait out in-flight reads, with abandon
		// closing done when they all landed before the adjustment.
		if submitted > 0 {
			p.abandon(submitted, len(req.Reads))
			<-p.done
		}
		status = s.admitError(w, ridStr, admit)
		return
	}
	select {
	case <-p.done:
		if n := p.expired.Load(); n > 0 {
			status = http.StatusGatewayTimeout
			s.writeError(w, status, ridStr, "deadline exceeded: %d of %d reads expired before compute", n, len(req.Reads))
			return
		}
	case <-ctx.Done():
		tr.Detach()
		status = http.StatusGatewayTimeout
		s.writeError(w, status, ridStr, "deadline exceeded with reads in flight")
		return
	}
	s.met.observeLatency(time.Since(start))
	writeJSON(w, http.StatusOK, MapResponse{Results: p.res})
}

// metricsBody is the /metrics document: the operational counters plus the
// SeedEx check statistics (shared StatsSnapshot path with the CLI).
type metricsBody struct {
	MetricsSnapshot
	UptimeSec float64           `json:"uptime_sec"`
	Build     obs.BuildInfo     `json:"build"`
	Checks    *checksBody       `json:"checks,omitempty"`
	Faults    *faults.Health    `json:"faults,omitempty"`
	MapQueue  *queueBody        `json:"map_queue,omitempty"`
	Index     *refstore.Status  `json:"index,omitempty"`
	Cluster   *clusterBody      `json:"cluster,omitempty"`
	Shards    []ShardSnapshot   `json:"shards,omitempty"`
	Trace     *obs.Stats        `json:"trace,omitempty"`
	Config    metricsConfigEcho `json:"config"`
}

// clusterBody summarizes the routing tier: shard pool shape plus the
// decision and steal counters summed over shards (the per-shard split is
// in the shards array).
type clusterBody struct {
	Shards   int    `json:"shards"`
	Policy   string `json:"route_policy"`
	Degraded int    `json:"shards_degraded"`
	Routed   int64  `json:"routed"`
	Rerouted int64  `json:"rerouted"`
	Avoided  int64  `json:"avoided"`
	Steals   int64  `json:"batches_stolen"`
}

type checksBody struct {
	core.StatsSnapshot
	PassRate          float64          `json:"pass_rate"`
	ThresholdOnlyRate float64          `json:"threshold_only_rate"`
	Outcomes          map[string]int64 `json:"outcomes"`
}

type queueBody struct {
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
}

type metricsConfigEcho struct {
	MaxBatch    int     `json:"max_batch"`
	FlushUs     float64 `json:"flush_us"`
	Workers     int     `json:"workers"`
	QueueCap    int     `json:"queue_cap"`
	Shards      int     `json:"shards"`
	RoutePolicy string  `json:"route_policy"`
	MapEnabled  bool    `json:"map_enabled"`
	Prefilter   bool    `json:"prefilter"`
	PrefilterTh float64 `json:"prefilter_threshold,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", obs.ContentType)
		s.reg.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, s.buildMetricsBody())
}

// buildMetricsBody assembles the /metrics JSON document (shared with the
// flight recorder's metrics.json).
func (s *Server) buildMetricsBody() metricsBody {
	extDepth, extCap := s.extQueue()
	body := metricsBody{
		MetricsSnapshot: s.met.Snapshot(extDepth, extCap),
		UptimeSec:       time.Since(s.started).Seconds(),
		Build:           s.cfg.Build,
		Shards:          s.ShardSnapshots(),
		Config: metricsConfigEcho{
			MaxBatch:    s.cfg.Batch.MaxBatch,
			FlushUs:     float64(s.cfg.Batch.FlushInterval.Nanoseconds()) / 1e3,
			Workers:     s.cfg.Batch.Workers,
			QueueCap:    s.cfg.Batch.QueueCap,
			Shards:      len(s.shards),
			RoutePolicy: s.router.policy.Name(),
			MapEnabled:  s.mapEnabled(),
			Prefilter:   s.prefilterOn(),
			PrefilterTh: s.prefilterThreshold(),
		},
	}
	cluster := clusterBody{Shards: len(s.shards), Policy: s.router.policy.Name()}
	for _, snap := range body.Shards {
		if snap.Degraded {
			cluster.Degraded++
		}
		cluster.Routed += snap.Routed
		cluster.Rerouted += snap.Rerouted
		cluster.Avoided += snap.Avoided
		cluster.Steals += snap.Steals
	}
	body.Cluster = &cluster
	if snap, ok := s.checksSnapshot(); ok {
		body.Checks = &checksBody{
			StatsSnapshot:     snap,
			PassRate:          snap.PassRate(),
			ThresholdOnlyRate: snap.ThresholdOnlyRate(),
			Outcomes:          snap.OutcomeCounts(),
		}
	}
	if s.cfg.Health != nil {
		// All shards share one health source (shared extender); the
		// per-engine view of a multi-engine cluster is in the shards array.
		h := s.cfg.Health()
		body.Faults = &h
	}
	if s.mapEnabled() {
		depth, capacity := s.mapQueue()
		body.MapQueue = &queueBody{Depth: depth, Cap: capacity}
	}
	if s.cfg.RefStore != nil {
		st := s.cfg.RefStore.Status()
		body.Index = &st
	}
	if s.trace != nil {
		ts := s.trace.TraceStats()
		body.Trace = &ts
	}
	return body
}

// handleTraces exports the span rings: Chrome trace_event JSON by default
// (load into chrome://tracing or Perfetto), NDJSON with ?format=ndjson,
// optionally filtered to one request with ?trace=<request id>. A single
// trace view is stitched: the head-sampled ring spans merge with the
// tail-retained journey (when kept) and with the device-layer spans
// linked from its kernel spans, so the timeline follows the request
// through router pick, batcher, steal, kernel tier and checker/rerun
// coherently. ?trace=<id>&format=journey returns a JSON document with
// the per-stage budget attribution (fractions of total).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.trace == nil {
		s.writeError(w, http.StatusNotFound, "", "tracing disabled: restart with a positive trace sample rate")
		return
	}
	var spans []obs.SpanData
	if tid := r.URL.Query().Get("trace"); tid != "" {
		id, _ := obs.RequestID(tid)
		spans = s.trace.TraceSpans(id)
		jd, kept := s.trace.Journey(id)
		if kept {
			spans = mergeSpans(spans, jd.Spans)
		}
		spans = s.stitchLinked(spans)
		if r.URL.Query().Get("format") == "journey" {
			doc := struct {
				Trace       string          `json:"trace"`
				Events      []string        `json:"events,omitempty"`
				Verdict     []string        `json:"verdict,omitempty"`
				Attribution obs.Attribution `json:"attribution"`
				Spans       []obs.SpanData  `json:"spans"`
			}{Trace: obs.FormatID(id), Attribution: obs.Attribute(spans), Spans: spans}
			if kept {
				doc.Events, doc.Verdict = jd.Events, jd.Verdict
			}
			writeJSON(w, http.StatusOK, doc)
			return
		}
	} else {
		spans = s.trace.Snapshot()
	}
	s.writeTraceExport(w, r, spans)
}

// mergeSpans unions two span sets, dropping duplicates (a head-sampled
// request records the same span into the ring and its journey buffer).
func mergeSpans(a, b []obs.SpanData) []obs.SpanData {
	type key struct {
		k          obs.Kind
		start, dur int64
		v1, v2     int64
	}
	seen := make(map[key]bool, len(a))
	out := a
	for _, sd := range a {
		seen[key{sd.Kind, sd.Start, sd.Dur, sd.V1, sd.V2}] = true
	}
	for _, sd := range b {
		k := key{sd.Kind, sd.Start, sd.Dur, sd.V1, sd.V2}
		if !seen[k] {
			seen[k] = true
			out = append(out, sd)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// stitchLinked pulls in the device-layer spans each kernel span links to
// (positive links are device batch keys; negative links name index
// generations and have no separate trace to fetch).
func (s *Server) stitchLinked(spans []obs.SpanData) []obs.SpanData {
	seen := map[int64]bool{}
	out := spans
	for _, sd := range spans {
		if sd.Kind != obs.KindKernel || sd.Link <= 0 || seen[sd.Link] {
			continue
		}
		seen[sd.Link] = true
		out = append(out, s.trace.TraceSpans(obs.BatchTraceID(sd.Link))...)
	}
	if len(out) > len(spans) {
		sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	}
	return out
}

// handleJourneys lists the tail-retained request journeys (newest
// first), or one journey with ?trace=<id>.
func (s *Server) handleJourneys(w http.ResponseWriter, r *http.Request) {
	if !s.trace.TailEnabled() {
		s.writeError(w, http.StatusNotFound, "", "tail retention disabled: restart with -trace-tail")
		return
	}
	if tid := r.URL.Query().Get("trace"); tid != "" {
		id, _ := obs.RequestID(tid)
		jd, ok := s.trace.Journey(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "", "no retained journey for trace %s", tid)
			return
		}
		writeJSON(w, http.StatusOK, jd)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Retained int               `json:"retained"`
		Journeys []obs.JourneyData `json:"journeys"`
	}{Retained: s.trace.TraceStats().TailRetained, Journeys: s.trace.Journeys()})
}

// handleSLO reports the burn-rate engine's full state. A tick runs
// first, so the reply reflects the counters as of this scrape even when
// the background sampler is off (tests, short-lived processes).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.slo.Tick()
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}

// handleTracesSlow exports the always-retained top-K slowest request
// spans, slowest first — the tail survives even aggressive sampling.
func (s *Server) handleTracesSlow(w http.ResponseWriter, r *http.Request) {
	if s.trace == nil {
		s.writeError(w, http.StatusNotFound, "", "tracing disabled: restart with a positive trace sample rate")
		return
	}
	s.writeTraceExport(w, r, s.trace.SlowSnapshot())
}

func (s *Server) writeTraceExport(w http.ResponseWriter, r *http.Request, spans []obs.SpanData) {
	_, epochWall := s.trace.Epoch()
	if r.URL.Query().Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteNDJSON(w, epochWall, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, epochWall, spans)
}

// reloadBody is the POST /admin/reload reply.
type reloadBody struct {
	OK         bool   `json:"ok"`
	Generation uint64 `json:"generation"` // serving generation after the attempt
	Error      string `json:"error,omitempty"`
}

// handleReload triggers a hot reload of the reference index store (the
// HTTP twin of SIGHUP). The call is synchronous and bounded by the
// store's retry budget: 200 with the new generation on success, 500
// with the rollback error when every attempt failed — in which case
// the previous generation is still serving and /healthz reports the
// degraded-reload state.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	_, ridStr := requestID(w, r)
	if s.cfg.RefStore == nil {
		s.writeError(w, http.StatusNotFound, ridStr, "no reference index store: server started without -index-store")
		return
	}
	gen, err := s.cfg.RefStore.Reload()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, reloadBody{OK: false, Generation: gen, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, reloadBody{OK: true, Generation: gen})
}

// handleHealthz reports the cluster's load-balancer view: "draining"
// answers 503 (admission is closed on every shard — nothing can serve;
// take the instance out of rotation), while "degraded" answers 200 (one
// or more shards fell back to host-only full-band mode; the router sends
// traffic around them, and even an all-degraded pool still serves exact
// results — slower, never wrong, so the LB must not evict it). The shard
// tally and per-shard breaker states ride along for operators; every
// value is a string so minimal clients can decode the body uniformly.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	degraded := 0
	breakers := make([]string, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.health == nil {
			continue
		}
		h := sh.health()
		if h.Degraded {
			degraded++
		}
		breakers = append(breakers, h.Breaker)
	}
	body := map[string]string{
		"shards":          strconv.Itoa(len(s.shards)),
		"shards_degraded": strconv.Itoa(degraded),
	}
	if s.mapEnabled() {
		if s.prefilterOn() {
			body["prefilter"] = "on"
		} else {
			body["prefilter"] = "off"
		}
	}
	// Index lifecycle: a degraded-reload store (last reload rolled back)
	// still serves exact results from the previous generation, so like
	// breaker degradation it answers 200 — the LB must not evict it, but
	// operators see the state and the rollback counters.
	indexDegraded := false
	if s.cfg.RefStore != nil {
		st := s.cfg.RefStore.Status()
		body["index_generation"] = strconv.FormatUint(st.Generation, 10)
		body["index_reloads"] = strconv.FormatInt(st.Reloads, 10)
		body["index_reload_failures"] = strconv.FormatInt(st.ReloadFailures, 10)
		body["index_rollbacks"] = strconv.FormatInt(st.Rollbacks, 10)
		if st.DegradedReload {
			body["index_state"] = "degraded-reload"
			indexDegraded = true
		} else {
			body["index_state"] = "ok"
		}
	}
	// The SLO burn-rate engine rides along as a note, not a status flip:
	// burning error budget is an alerting concern, and the endpoints are
	// still serving — the LB keeps the instance in rotation.
	if s.slo.Snapshot().Degraded {
		body["slo"] = "degraded-slo"
	} else {
		body["slo"] = "ok"
	}
	if degraded > 0 || indexDegraded {
		body["status"] = "degraded"
		if degraded > 0 {
			if len(s.shards) == 1 {
				body["breaker"] = breakers[0]
			} else {
				body["breakers"] = strings.Join(breakers, ",")
			}
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	body["status"] = "ok"
	writeJSON(w, http.StatusOK, body)
}

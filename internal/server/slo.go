package server

import (
	"encoding/json"
	"io"
	"time"

	"seedex/internal/obs"
)

// SLOConfig declares the server's service-level objectives for the
// burn-rate engine (internal/obs/slo.go). The zero value enables the
// engine with the defaults below; set Interval < 0 to disable the
// background sampler (scrapes of /debug/slo still tick on demand).
type SLOConfig struct {
	// LatencyBudget is the per-request latency objective threshold for
	// the extend-latency objective (default: the tail-sampling budget
	// when tail retention is on, else 100ms). Requests finishing within
	// the budget are "good" events.
	LatencyBudget time.Duration
	// LatencyTarget is the promised fraction of requests within
	// LatencyBudget (default 0.99 — a p99 latency objective).
	LatencyTarget float64
	// AvailabilityTarget is the promised fraction of requests answered
	// without a 429/500/503/504 (default 0.999).
	AvailabilityTarget float64
	// RescueTarget is the promised fraction of prefilter-screened chains
	// NOT entering the rescue loop (default 0.95 — a rescue-rate
	// ceiling of 5%; a climbing rescue rate means the filter threshold
	// no longer matches the traffic).
	RescueTarget float64
	// Interval is the background sampling cadence (default 10s; < 0
	// disables the sampler).
	Interval time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c SLOConfig) withDefaults(tailBudget time.Duration) SLOConfig {
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = tailBudget
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 100 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	if c.RescueTarget <= 0 || c.RescueTarget >= 1 {
		c.RescueTarget = 0.95
	}
	return c
}

// newSLO wires the three declared objectives to the server's existing
// counters. Every source reads cumulative totals, so the engine costs
// the hot paths nothing: sampling is a counter sweep on a 10s cadence.
func (s *Server) newSLO() *obs.SLO {
	cfg := s.cfg.SLO.withDefaults(s.trace.TailBudget())
	s.cfg.SLO = cfg
	budgetNs := cfg.LatencyBudget.Nanoseconds()
	objs := []obs.Objective{
		{
			Name:   "extend-latency-p99",
			Help:   "Requests finishing within the latency budget (" + cfg.LatencyBudget.String() + ").",
			Target: cfg.LatencyTarget,
			// Good events sum the pow2 latency buckets whose upper bound
			// fits the budget; the bucket straddling the threshold counts
			// as bad, so the objective is conservative by at most one
			// power of two.
			Source: func() (int64, int64) {
				lat := s.met.Latency.snapshot()
				var good int64
				for i, c := range lat.Counts {
					if c == 0 {
						continue
					}
					if _, hi := bucketBounds(i); int64(hi) <= budgetNs {
						good += c
					}
				}
				return good, lat.N
			},
		},
		{
			Name:   "availability",
			Help:   "Requests answered without a 429/500/503/504.",
			Target: cfg.AvailabilityTarget,
			Source: func() (int64, int64) {
				total := s.met.Requests.Load()
				bad := s.met.Failed.Load()
				return total - bad, total
			},
		},
		{
			Name:   "rescue-rate",
			Help:   "Prefilter-screened chains that did not need the rescue loop.",
			Target: cfg.RescueTarget,
			Source: func() (int64, int64) {
				snap, ok := s.checksSnapshot()
				if !ok {
					return 0, 0
				}
				screened := snap.PrefilterPass + snap.PrefilterReject
				return screened - snap.PrefilterRescued, screened
			},
		},
	}
	return obs.NewSLO(obs.SLOConfig{Interval: cfg.Interval, Now: cfg.Now}, objs...)
}

// SLO exposes the burn-rate engine (the /debug/slo source).
func (s *Server) SLO() *obs.SLO { return s.slo }

// FlightRecorder exposes the crash/degradation dump recorder, nil when
// Config.Flight.Dir is empty.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// FlightDump writes one flight tarball (debounced by the recorder's
// MinInterval; obs.ErrFlightThrottled when suppressed). Returns the
// tarball path.
func (s *Server) FlightDump(reason string) (string, error) {
	if s.flight == nil {
		return "", obs.ErrFlightDisabled
	}
	return s.flight.Dump(reason, s.flightSources(reason))
}

// FlightDumpForce bypasses the debounce — operator-initiated dumps
// (SIGQUIT) always land.
func (s *Server) FlightDumpForce(reason string) (string, error) {
	if s.flight == nil {
		return "", obs.ErrFlightDisabled
	}
	return s.flight.Force(reason, s.flightSources(reason))
}

// flightSources assembles the dump contents: trigger metadata, the full
// metrics document, the SLO engine state, every tail-retained journey,
// and the head-sampled + slowest-request span rings as NDJSON. The
// recorder appends goroutine and heap profiles on its own.
func (s *Server) flightSources(reason string) []obs.FlightSource {
	srcs := []obs.FlightSource{
		jsonSource("meta.json", func() any {
			return map[string]any{
				"reason":     reason,
				"time":       time.Now().UTC().Format(time.RFC3339Nano),
				"version":    s.cfg.Build.Version,
				"commit":     s.cfg.Build.Commit,
				"go":         s.cfg.Build.GoVersion(),
				"uptime_sec": time.Since(s.started).Seconds(),
			}
		}),
		jsonSource("metrics.json", func() any { return s.buildMetricsBody() }),
		jsonSource("slo.json", func() any {
			s.slo.Tick()
			return s.slo.Snapshot()
		}),
	}
	if s.trace.TailEnabled() {
		srcs = append(srcs, jsonSource("journeys.json", func() any { return s.trace.Journeys() }))
	}
	if s.trace != nil {
		_, epochWall := s.trace.Epoch()
		srcs = append(srcs,
			obs.FlightSource{Name: "traces.ndjson", Write: func(w io.Writer) error {
				return obs.WriteNDJSON(w, epochWall, s.trace.Snapshot())
			}},
			obs.FlightSource{Name: "slow.ndjson", Write: func(w io.Writer) error {
				return obs.WriteNDJSON(w, epochWall, s.trace.SlowSnapshot())
			}},
		)
	}
	return srcs
}

// jsonSource wraps a snapshot closure as an indented-JSON flight file.
func jsonSource(name string, v func() any) obs.FlightSource {
	return obs.FlightSource{Name: name, Write: func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v())
	}}
}

// startFlightWatcher launches the degradation watcher: a FlightPoll
// cadence (default 2s) sweep of the breaker-trip counter, the index
// rollback counter, and the SLO fast-burn flag. Any of them advancing
// (or the fast-burn flag rising) triggers an automatic flight dump named
// for the trigger; the recorder's MinInterval debounce keeps a flapping
// breaker from filling the disk.
func (s *Server) startFlightWatcher() {
	poll := s.cfg.FlightPoll
	if poll <= 0 {
		poll = 2 * time.Second
	}
	s.flightStop = make(chan struct{})
	s.flightDone = make(chan struct{})
	var lastTrips, lastRollbacks int64
	if snap, ok := s.checksSnapshot(); ok {
		lastTrips = snap.BreakerTrips
	}
	if s.cfg.RefStore != nil {
		lastRollbacks = s.cfg.RefStore.Status().Rollbacks
	}
	go func() {
		defer close(s.flightDone)
		tick := time.NewTicker(poll)
		defer tick.Stop()
		fastBurn := false
		for {
			select {
			case <-s.flightStop:
				return
			case <-tick.C:
			}
			if snap, ok := s.checksSnapshot(); ok && snap.BreakerTrips > lastTrips {
				lastTrips = snap.BreakerTrips
				s.FlightDump("breaker-trip")
			}
			if s.cfg.RefStore != nil {
				if rb := s.cfg.RefStore.Status().Rollbacks; rb > lastRollbacks {
					lastRollbacks = rb
					s.FlightDump("reload-rollback")
				}
			}
			now := s.slo.Snapshot().FastBurn
			if now && !fastBurn {
				s.FlightDump("slo-fast-burn")
			}
			fastBurn = now
		}
	}()
}

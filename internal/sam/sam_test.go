package sam

import (
	"strings"
	"testing"

	"seedex/internal/align"
)

func TestMappedRecordRendering(t *testing.T) {
	r := Record{
		QName: "read1", Flag: FlagReverse, RName: "chr1", Pos: 42, MapQ: 60,
		Cigar: align.Cigar{{Op: align.OpSoft, Len: 2}, {Op: align.OpMatch, Len: 6}},
		Seq:   "ACGTACGT", Qual: "IIIIIIII", Score: 90, SubScore: 10,
	}
	s := r.String()
	fields := strings.Split(s, "\t")
	if len(fields) != 13 {
		t.Fatalf("got %d fields: %q", len(fields), s)
	}
	want := []string{"read1", "16", "chr1", "42", "60", "2S6M", "*", "0", "0", "ACGTACGT", "IIIIIIII", "AS:i:90", "XS:i:10"}
	for i, w := range want {
		if fields[i] != w {
			t.Fatalf("field %d = %q, want %q", i, fields[i], w)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmappedRecordRendering(t *testing.T) {
	r := Record{QName: "read2", Flag: FlagUnmapped, Seq: "ACGT", Qual: "IIII"}
	fields := strings.Split(r.String(), "\t")
	if len(fields) != 11 {
		t.Fatalf("unmapped record has %d fields", len(fields))
	}
	if fields[2] != "*" || fields[3] != "0" || fields[5] != "*" {
		t.Fatalf("unmapped placeholders wrong: %v", fields)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySeqPlaceholders(t *testing.T) {
	r := Record{QName: "r", Flag: FlagUnmapped}
	fields := strings.Split(r.String(), "\t")
	if fields[9] != "*" || fields[10] != "*" {
		t.Fatalf("empty seq/qual should render *: %v", fields)
	}
}

func TestHeader(t *testing.T) {
	h := Header("chrSim", 12345, "seedex")
	if !strings.Contains(h, "SN:chrSim") || !strings.Contains(h, "LN:12345") {
		t.Fatalf("header missing fields: %q", h)
	}
	if !strings.HasPrefix(h, "@HD") {
		t.Fatalf("header must start with @HD: %q", h)
	}
}

func TestValidateCatchesBadRecords(t *testing.T) {
	bad := Record{QName: "x", Pos: 0, Seq: "ACGT", Cigar: align.Cigar{{Op: align.OpMatch, Len: 4}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("pos 0 mapped record must fail")
	}
	bad = Record{QName: "x", Pos: 5, MapQ: 99, Seq: "ACGT", Cigar: align.Cigar{{Op: align.OpMatch, Len: 4}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mapq 99 must fail")
	}
	bad = Record{QName: "x", Pos: 5, Seq: "ACGT", Cigar: align.Cigar{{Op: align.OpMatch, Len: 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("cigar/seq length mismatch must fail")
	}
}

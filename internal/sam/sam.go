// Package sam renders alignments as SAM records — the output stage of the
// aligner pipeline and the artifact over which the paper validates bit
// equivalence (787M reads of identical SAM output; reproduced here as the
// byte-identical-SAM test between the SeedEx and full-band pipelines).
package sam

import (
	"fmt"
	"strings"

	"seedex/internal/align"
)

// Flag bits (SAM spec subset used by single- and paired-end alignment).
const (
	FlagPaired       = 0x1
	FlagProperPair   = 0x2
	FlagUnmapped     = 0x4
	FlagMateUnmapped = 0x8
	FlagReverse      = 0x10
	FlagMateReverse  = 0x20
	FlagRead1        = 0x40
	FlagRead2        = 0x80
)

// Record is one SAM alignment line.
type Record struct {
	QName string
	Flag  int
	RName string
	Pos   int // 1-based leftmost mapping position; 0 when unmapped
	MapQ  int
	Cigar align.Cigar
	Seq   string // ASCII bases, already in SAM orientation
	Qual  string
	// Score is the alignment score (AS:i tag); SubScore the best
	// competing score (XS:i).
	Score, SubScore int
	// Mate fields (paired-end): RNext is "=" for same-contig mates, PNext
	// the mate's 1-based position, TLen the signed template length.
	RNext string
	PNext int
	TLen  int
}

// String renders the 11 mandatory fields plus AS/XS tags.
func (r Record) String() string {
	rname, pos, cigar := "*", 0, "*"
	if r.Flag&FlagUnmapped == 0 {
		rname, pos, cigar = r.RName, r.Pos, r.Cigar.String()
	}
	seq, qual := r.Seq, r.Qual
	if seq == "" {
		seq = "*"
	}
	if qual == "" {
		qual = "*"
	}
	rnext := r.RNext
	if rnext == "" {
		rnext = "*"
	}
	s := fmt.Sprintf("%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s",
		r.QName, r.Flag, rname, pos, r.MapQ, cigar, rnext, r.PNext, r.TLen, seq, qual)
	if r.Flag&FlagUnmapped == 0 {
		s += fmt.Sprintf("\tAS:i:%d\tXS:i:%d", r.Score, r.SubScore)
	}
	return s
}

// Header renders a minimal SAM header for a single reference.
func Header(refName string, refLen int, program string) string {
	return HeaderMulti([]string{refName}, []int{refLen}, program)
}

// HeaderMulti renders a SAM header for several contigs.
func HeaderMulti(names []string, lengths []int, program string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "@HD\tVN:1.6\tSO:unsorted\n")
	for i, n := range names {
		fmt.Fprintf(&b, "@SQ\tSN:%s\tLN:%d\n", n, lengths[i])
	}
	fmt.Fprintf(&b, "@PG\tID:%s\tPN:%s\n", program, program)
	return b.String()
}

// Validate checks structural invariants of a mapped record.
func (r Record) Validate() error {
	if r.Flag&FlagUnmapped != 0 {
		return nil
	}
	if r.Pos <= 0 {
		return fmt.Errorf("sam: mapped record %s has pos %d", r.QName, r.Pos)
	}
	if len(r.Seq) > 0 {
		if err := r.Cigar.Validate(len(r.Seq), r.Cigar.TargetLen()); err != nil {
			return fmt.Errorf("sam: %s: %w", r.QName, err)
		}
	}
	if r.MapQ < 0 || r.MapQ > 60 {
		return fmt.Errorf("sam: %s: mapq %d out of range", r.QName, r.MapQ)
	}
	return nil
}

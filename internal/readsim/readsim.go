// Package readsim simulates short-read sequencing: it samples reads from
// a reference genome, injects individual variants (the ~0.1% human-vs-
// reference divergence) and sequencing errors with an Illumina-like
// profile, and records the ground-truth origin of every read. It stands
// in for the paper's 50x NA12878 Illumina platinum-genomes dataset (see
// the substitution table in DESIGN.md).
package readsim

import (
	"fmt"
	"math/rand"

	"seedex/internal/genome"
)

// Config controls read simulation.
type Config struct {
	// N is the number of reads; ReadLen their length (paper: 101 bp).
	N, ReadLen int
	// SNPRate is the per-base variant substitution rate (human: ~0.001).
	SNPRate float64
	// IndelRate is the per-base variant indel rate (~0.0001); half
	// insertions, half deletions, with geometric length (mean ~1.5).
	IndelRate float64
	// ErrRate is the per-base sequencing substitution error rate
	// (Illumina: ~0.002, growing toward the read's 3' end).
	ErrRate float64
	// RevCompFraction of reads come from the reverse strand (default 0.5).
	RevCompFraction float64
	// GarbageTailFraction of reads get their last few bases replaced with
	// random sequence, modelling adapter read-through and the low-quality
	// 3' tails of real Illumina data (these are what drive extensions
	// into the between-thresholds regime of the SeedEx checks).
	GarbageTailFraction float64
	// GarbageTailMax is the maximum garbage tail length (default 25).
	GarbageTailMax int
}

// DefaultConfig mirrors the paper's workload shape.
func DefaultConfig(n int) Config {
	return Config{N: n, ReadLen: 101, SNPRate: 0.001, IndelRate: 0.0001, ErrRate: 0.002, RevCompFraction: 0.5}
}

// RealisticConfig adds the messiness of real datasets on top of
// DefaultConfig: elevated error and a fraction of garbage 3' tails.
func RealisticConfig(n int) Config {
	c := DefaultConfig(n)
	c.ErrRate = 0.005
	c.GarbageTailFraction = 0.15
	c.GarbageTailMax = 30
	return c
}

// Read is one simulated read with its ground truth.
type Read struct {
	ID   string
	Seq  []byte // base codes
	Qual []byte // Phred+33 qualities
	// TruePos is the 0-based reference position of the read's origin
	// (leftmost reference base covered).
	TruePos int
	// RevComp marks reads sampled from the reverse strand.
	RevComp bool
	// Edits counts injected variants plus sequencing errors.
	Edits int
}

// Simulate draws cfg.N reads from ref using rng.
func Simulate(ref []byte, cfg Config, rng *rand.Rand) []Read {
	if cfg.ReadLen <= 0 || cfg.ReadLen > len(ref) {
		return nil
	}
	reads := make([]Read, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		reads = append(reads, simulateOne(ref, cfg, rng, i))
	}
	return reads
}

func simulateOne(ref []byte, cfg Config, rng *rand.Rand, idx int) Read {
	// Sample a window slightly longer than the read so deletions still
	// leave enough bases.
	win := cfg.ReadLen + 10
	pos := rng.Intn(len(ref) - win + 1)
	tmpl := append([]byte(nil), ref[pos:pos+win]...)

	edits := 0
	// Variants + errors in one pass over the template.
	out := make([]byte, 0, win)
	for j := 0; j < len(tmpl); j++ {
		c := tmpl[j]
		r := rng.Float64()
		switch {
		case r < cfg.IndelRate/2: // deletion
			edits++
			continue
		case r < cfg.IndelRate: // insertion before c
			edits++
			out = append(out, byte(rng.Intn(4)), c)
		case r < cfg.IndelRate+cfg.SNPRate: // variant substitution
			edits++
			out = append(out, (c+byte(1+rng.Intn(3)))%4)
		default:
			out = append(out, c)
		}
	}
	if len(out) < cfg.ReadLen {
		out = append(out, tmpl[len(tmpl)-(cfg.ReadLen-len(out)):]...)
	}
	seq := out[:cfg.ReadLen]
	if cfg.GarbageTailFraction > 0 && rng.Float64() < cfg.GarbageTailFraction {
		max := cfg.GarbageTailMax
		if max <= 0 {
			max = 25
		}
		if max > cfg.ReadLen/2 {
			max = cfg.ReadLen / 2
		}
		tail := 1 + rng.Intn(max)
		for j := cfg.ReadLen - tail; j < cfg.ReadLen; j++ {
			seq[j] = byte(rng.Intn(4))
			edits++
		}
	}
	// Sequencing errors, rate ramping toward the 3' end.
	qual := make([]byte, cfg.ReadLen)
	for j := range seq {
		ramp := 0.5 + 1.5*float64(j)/float64(cfg.ReadLen)
		if rng.Float64() < cfg.ErrRate*ramp {
			seq[j] = (seq[j] + byte(1+rng.Intn(3))) % 4
			edits++
			qual[j] = '#' + 10
		} else {
			qual[j] = 'I'
		}
	}
	rd := Read{
		ID:      fmt.Sprintf("sim_%d_pos%d", idx, pos),
		Seq:     seq,
		Qual:    qual,
		TruePos: pos,
		Edits:   edits,
	}
	if rng.Float64() < cfg.RevCompFraction {
		rd.Seq = genome.RevComp(rd.Seq)
		for a, b := 0, len(rd.Qual)-1; a < b; a, b = a+1, b-1 {
			rd.Qual[a], rd.Qual[b] = rd.Qual[b], rd.Qual[a]
		}
		rd.RevComp = true
		rd.ID += "_rc"
	}
	return rd
}

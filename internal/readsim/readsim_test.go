package readsim

import (
	"math/rand"
	"testing"

	"seedex/internal/genome"
)

func TestSimulateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := genome.Simulate(genome.SimConfig{Length: 20_000}, rng)
	reads := Simulate(ref, DefaultConfig(200), rng)
	if len(reads) != 200 {
		t.Fatalf("got %d reads", len(reads))
	}
	revs := 0
	for _, r := range reads {
		if len(r.Seq) != 101 || len(r.Qual) != 101 {
			t.Fatalf("read %s has wrong lengths", r.ID)
		}
		if r.TruePos < 0 || r.TruePos >= len(ref) {
			t.Fatalf("read %s true pos %d out of range", r.ID, r.TruePos)
		}
		for _, c := range r.Seq {
			if c > 3 {
				t.Fatalf("read %s has invalid base %d", r.ID, c)
			}
		}
		if r.RevComp {
			revs++
		}
	}
	if revs < 60 || revs > 140 {
		t.Fatalf("strand balance off: %d/200 reverse", revs)
	}
}

// TestErrorFreeReadsMatchReference: with all rates zero a forward read is
// a verbatim window of the reference at its TruePos.
func TestErrorFreeReadsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Simulate(genome.SimConfig{Length: 10_000}, rng)
	cfg := Config{N: 50, ReadLen: 80, RevCompFraction: 0}
	for _, r := range Simulate(ref, cfg, rng) {
		for i, c := range r.Seq {
			if ref[r.TruePos+i] != c {
				t.Fatalf("read %s differs from reference at %d", r.ID, i)
			}
		}
		if r.Edits != 0 {
			t.Fatalf("read %s reports %d edits with zero rates", r.ID, r.Edits)
		}
	}
}

func TestRevCompGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.Simulate(genome.SimConfig{Length: 10_000}, rng)
	cfg := Config{N: 50, ReadLen: 80, RevCompFraction: 1}
	for _, r := range Simulate(ref, cfg, rng) {
		if !r.RevComp {
			t.Fatal("expected reverse-strand read")
		}
		fw := genome.RevComp(r.Seq)
		for i, c := range fw {
			if ref[r.TruePos+i] != c {
				t.Fatalf("revcomp of read %s differs from reference at %d", r.ID, i)
			}
		}
	}
}

func TestErrorRatesRoughlyHonoured(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := genome.Simulate(genome.SimConfig{Length: 50_000}, rng)
	cfg := Config{N: 500, ReadLen: 100, ErrRate: 0.01, RevCompFraction: 0}
	edits := 0
	for _, r := range Simulate(ref, cfg, rng) {
		edits += r.Edits
	}
	// Expected ~ 500*100*0.01 = 500 errors (the ramp averages ~1.25x).
	if edits < 300 || edits > 1000 {
		t.Fatalf("edit count %d implausible for 1%% error rate", edits)
	}
}

func TestDegenerateConfig(t *testing.T) {
	ref := []byte{0, 1, 2, 3}
	if Simulate(ref, Config{N: 5, ReadLen: 100}, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("read longer than reference must yield nil")
	}
}

func TestRealisticConfigGarbageTails(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.Simulate(genome.SimConfig{Length: 30_000}, rng)
	cfg := RealisticConfig(400)
	if cfg.GarbageTailFraction <= 0 || cfg.ErrRate <= 0 {
		t.Fatalf("realistic config degenerate: %+v", cfg)
	}
	reads := Simulate(ref, cfg, rng)
	// Garbage-tailed reads should show visibly elevated edit counts.
	heavy := 0
	for _, r := range reads {
		if r.Edits >= 5 {
			heavy++
		}
	}
	lo := int(float64(cfg.N) * cfg.GarbageTailFraction / 2)
	if heavy < lo {
		t.Fatalf("only %d/%d reads look garbage-tailed, expected >= %d", heavy, len(reads), lo)
	}
}

func TestIndelReadsStillAnchor(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := genome.Simulate(genome.SimConfig{Length: 20_000}, rng)
	cfg := DefaultConfig(300)
	cfg.IndelRate = 0.01 // force the indel branches
	indels := 0
	for _, r := range Simulate(ref, cfg, rng) {
		if len(r.Seq) != cfg.ReadLen {
			t.Fatalf("read %s has length %d after indels", r.ID, len(r.Seq))
		}
		if r.Edits > 0 {
			indels++
		}
	}
	if indels < 150 {
		t.Fatalf("too few edited reads: %d/300", indels)
	}
}

package chain

import (
	"math/rand"
	"testing"
)

func TestSeedAccessors(t *testing.T) {
	s := Seed{QBeg: 5, RBeg: 100, Len: 20}
	if s.QEnd() != 25 || s.REnd() != 120 || s.Diag() != 95 {
		t.Fatalf("accessors wrong: %d %d %d", s.QEnd(), s.REnd(), s.Diag())
	}
}

func TestColinearSeedsChainTogether(t *testing.T) {
	seeds := []Seed{
		{QBeg: 0, RBeg: 1000, Len: 25},
		{QBeg: 30, RBeg: 1032, Len: 25}, // slight diagonal drift (indel)
		{QBeg: 60, RBeg: 1061, Len: 30},
	}
	chains := Build(seeds, DefaultConfig())
	if len(chains) != 1 {
		t.Fatalf("expected one chain, got %d", len(chains))
	}
	c := chains[0]
	if len(c.Seeds) != 3 {
		t.Fatalf("chain has %d seeds, want 3", len(c.Seeds))
	}
	if c.Weight != 80 {
		t.Fatalf("weight %d, want 80", c.Weight)
	}
	if c.Anchor().Len != 30 {
		t.Fatalf("anchor %+v, want the longest seed", c.Anchor())
	}
}

func TestDistantLociStaySeparate(t *testing.T) {
	seeds := []Seed{
		{QBeg: 0, RBeg: 1000, Len: 40},
		{QBeg: 0, RBeg: 90_000, Len: 40},
	}
	chains := Build(seeds, DefaultConfig())
	if len(chains) != 2 {
		t.Fatalf("expected two chains, got %d", len(chains))
	}
}

func TestStrandsNeverChain(t *testing.T) {
	seeds := []Seed{
		{QBeg: 0, RBeg: 1000, Len: 30},
		{QBeg: 40, RBeg: 1040, Len: 30, Rev: true},
	}
	chains := Build(seeds, Config{MaxGap: 100, MaxDiagDiff: 100, MinWeight: 1, KeepFraction: 0, MaxChains: 10})
	if len(chains) != 2 {
		t.Fatalf("opposite strands chained together: %d chains", len(chains))
	}
}

func TestWeightCountsUniqueCoverage(t *testing.T) {
	// Two heavily overlapping seeds: weight is the union, not the sum.
	seeds := []Seed{
		{QBeg: 0, RBeg: 1000, Len: 30},
		{QBeg: 10, RBeg: 1010, Len: 30},
	}
	chains := Build(seeds, Config{MaxGap: 100, MaxDiagDiff: 100, MinWeight: 1, KeepFraction: 0, MaxChains: 10})
	// Overlapping colinear seeds may or may not merge depending on the
	// advancement rule; in either case no chain may report weight > 40.
	for _, c := range chains {
		if c.Weight > 40 {
			t.Fatalf("weight %d exceeds union coverage 40", c.Weight)
		}
	}
}

func TestFiltering(t *testing.T) {
	seeds := []Seed{
		{QBeg: 0, RBeg: 1000, Len: 80},   // strong
		{QBeg: 0, RBeg: 50_000, Len: 20}, // weak: below half of best
	}
	chains := Build(seeds, DefaultConfig())
	if len(chains) != 1 || chains[0].Weight != 80 {
		t.Fatalf("filtering failed: %+v", chains)
	}
	// MinWeight filter.
	weak := []Seed{{QBeg: 0, RBeg: 10, Len: 5}}
	if got := Build(weak, DefaultConfig()); len(got) != 0 {
		t.Fatalf("sub-MinWeight chain survived: %+v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	if Build(nil, DefaultConfig()) != nil {
		t.Fatal("nil seeds must produce nil chains")
	}
}

func TestDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var seeds []Seed
	for i := 0; i < 50; i++ {
		seeds = append(seeds, Seed{QBeg: rng.Intn(80), RBeg: rng.Intn(5000), Len: 19 + rng.Intn(30)})
	}
	a := Build(seeds, DefaultConfig())
	b := Build(seeds, DefaultConfig())
	if len(a) != len(b) {
		t.Fatal("nondeterministic chain count")
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || a[i].RBeg() != b[i].RBeg() {
			t.Fatal("nondeterministic chain order")
		}
	}
}

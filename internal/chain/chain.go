// Package chain groups colinear seeds into chains, the step between
// seeding and seed extension in the BWA-MEM pipeline (paper §II-A:
// "Seeding threads perform seeding and chaining").
package chain

import "sort"

// Seed is one exact match between query and reference. Strand handling is
// the caller's: seeds from the reverse-complement query carry Rev.
type Seed struct {
	QBeg, RBeg, Len int
	Rev             bool
}

// QEnd returns the query end (exclusive).
func (s Seed) QEnd() int { return s.QBeg + s.Len }

// REnd returns the reference end (exclusive).
func (s Seed) REnd() int { return s.RBeg + s.Len }

// Diag returns the seed's matrix diagonal.
func (s Seed) Diag() int { return s.RBeg - s.QBeg }

// Chain is a colinear seed group.
type Chain struct {
	Seeds []Seed
	Rev   bool
	// Weight is the query coverage of the chain's seeds (BWA-MEM's chain
	// weight, used for filtering).
	Weight int
}

// QBeg returns the chain's query start.
func (c Chain) QBeg() int { return c.Seeds[0].QBeg }

// RBeg returns the chain's reference start.
func (c Chain) RBeg() int { return c.Seeds[0].RBeg }

// Anchor returns the chain's longest seed (extension anchor).
func (c Chain) Anchor() Seed {
	best := c.Seeds[0]
	for _, s := range c.Seeds[1:] {
		if s.Len > best.Len {
			best = s
		}
	}
	return best
}

// Config controls chaining.
type Config struct {
	// MaxGap is the largest query/reference gap joining two seeds (BWA
	// default ballpark: a few hundred for short reads).
	MaxGap int
	// MaxDiagDiff is the largest diagonal drift within a chain.
	MaxDiagDiff int
	// MinWeight drops chains with less query coverage.
	MinWeight int
	// KeepFraction drops chains lighter than this fraction of the best
	// chain's weight (BWA's drop_ratio = 0.5).
	KeepFraction float64
	// MaxChains caps the number of chains returned (best first).
	MaxChains int
}

// DefaultConfig mirrors BWA-MEM-style values for 101 bp reads.
func DefaultConfig() Config {
	return Config{MaxGap: 100, MaxDiagDiff: 100, MinWeight: 19, KeepFraction: 0.5, MaxChains: 10}
}

// Build chains the seeds (one strand at a time or mixed; strands never
// chain together). The result is sorted by descending weight and
// filtered per cfg.
func Build(seeds []Seed, cfg Config) []Chain {
	if len(seeds) == 0 {
		return nil
	}
	sorted := append([]Seed(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Rev != b.Rev {
			return !a.Rev
		}
		if a.RBeg != b.RBeg {
			return a.RBeg < b.RBeg
		}
		return a.QBeg < b.QBeg
	})
	var chains []Chain
	for _, s := range sorted {
		placed := false
		// Try the most recent chains first (seeds arrive in reference
		// order, so compatible chains cluster at the tail).
		for ci := len(chains) - 1; ci >= 0 && ci >= len(chains)-8; ci-- {
			c := &chains[ci]
			if c.Rev != s.Rev {
				continue
			}
			last := c.Seeds[len(c.Seeds)-1]
			if s.QBeg <= last.QBeg || s.RBeg <= last.RBeg {
				continue // must advance in both coordinates
			}
			qGap := s.QBeg - last.QEnd()
			rGap := s.RBeg - last.REnd()
			if qGap > cfg.MaxGap || rGap > cfg.MaxGap {
				continue
			}
			dd := s.Diag() - last.Diag()
			if dd < 0 {
				dd = -dd
			}
			if dd > cfg.MaxDiagDiff {
				continue
			}
			c.Seeds = append(c.Seeds, s)
			placed = true
			break
		}
		if !placed {
			chains = append(chains, Chain{Seeds: []Seed{s}, Rev: s.Rev})
		}
	}
	for i := range chains {
		chains[i].Weight = weight(chains[i].Seeds)
	}
	sort.SliceStable(chains, func(i, j int) bool { return chains[i].Weight > chains[j].Weight })
	// Filter.
	out := chains[:0]
	best := chains[0].Weight
	for _, c := range chains {
		if c.Weight < cfg.MinWeight {
			continue
		}
		if float64(c.Weight) < cfg.KeepFraction*float64(best) {
			continue
		}
		out = append(out, c)
		if cfg.MaxChains > 0 && len(out) >= cfg.MaxChains {
			break
		}
	}
	return out
}

// weight is the union query coverage of the seeds.
func weight(seeds []Seed) int {
	type iv struct{ a, b int }
	ivs := make([]iv, len(seeds))
	for i, s := range seeds {
		ivs[i] = iv{s.QBeg, s.QEnd()}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	w, end := 0, -1
	for _, v := range ivs {
		if v.a > end {
			w += v.b - v.a
			end = v.b
		} else if v.b > end {
			w += v.b - end
			end = v.b
		}
	}
	return w
}

package pileup

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

func TestPileupWalksCigars(t *testing.T) {
	// ref positions:      0123456789
	// read1 (pos 2):        MMMM
	// read2 (pos 4, 1D):      MM D MM
	reads := []AlignedRead{
		{Pos: 2, Seq: []byte{0, 1, 2, 3}, Cigar: align.Cigar{{Op: align.OpMatch, Len: 4}}},
		{Pos: 4, Seq: []byte{2, 3, 1, 1}, Cigar: align.Cigar{
			{Op: align.OpMatch, Len: 2}, {Op: align.OpDel, Len: 1}, {Op: align.OpMatch, Len: 2},
		}},
	}
	piles := Pileup(10, reads)
	if piles[2].Counts[0] != 1 || piles[5].Counts[3] != 2 {
		t.Fatalf("unexpected piles: %+v", piles[2:6])
	}
	if piles[6].Depth != 0 { // deleted base: no vote
		t.Fatalf("deleted position has depth %d", piles[6].Depth)
	}
	if piles[7].Counts[1] != 1 || piles[8].Counts[1] != 1 {
		t.Fatalf("post-deletion votes wrong: %+v", piles[7:9])
	}
}

func TestPileupSoftClipAndInsertion(t *testing.T) {
	reads := []AlignedRead{
		{Pos: 3, Seq: []byte{0, 0, 1, 2, 3, 3}, Cigar: align.Cigar{
			{Op: align.OpSoft, Len: 2}, {Op: align.OpMatch, Len: 1},
			{Op: align.OpIns, Len: 1}, {Op: align.OpMatch, Len: 2},
		}},
	}
	piles := Pileup(10, reads)
	if piles[3].Counts[1] != 1 || piles[4].Counts[3] != 1 || piles[5].Counts[3] != 1 {
		t.Fatalf("clip/insertion handling wrong: %+v", piles[3:6])
	}
}

// TestEndToEndVariantCalling: simulate a genome with known SNVs, align
// 30x reads through the SeedEx pipeline, and recover the variants. The
// same calls must come out of the full-band pipeline (bit-equivalent
// alignments => bit-equivalent variant calls).
func TestEndToEndVariantCalling(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ref := genome.Simulate(genome.SimConfig{Length: 20_000}, rng)

	// The donor genome: ref with 12 planted SNVs.
	donor := append([]byte(nil), ref...)
	truth := map[int]byte{}
	for len(truth) < 12 {
		pos := 500 + rng.Intn(len(ref)-1000)
		if _, dup := truth[pos]; dup {
			continue
		}
		alt := (donor[pos] + byte(1+rng.Intn(3))) % 4
		truth[pos] = alt
		donor[pos] = alt
	}
	// ~30x coverage of 101bp reads from the donor.
	cfg := readsim.Config{N: 6000, ReadLen: 101, ErrRate: 0.002, RevCompFraction: 0.5}
	reads := readsim.Simulate(donor, cfg, rng)

	call := func(ext align.Extender) []Variant {
		a, err := bwamem.New("chr", ref, ext)
		if err != nil {
			t.Fatal(err)
		}
		var aligned []AlignedRead
		for _, r := range reads {
			al := a.AlignRead(r.Seq)
			if !al.Mapped || al.MapQ < 20 {
				continue
			}
			seq := r.Seq
			if al.Rev {
				seq = genome.RevComp(r.Seq)
			}
			aligned = append(aligned, AlignedRead{Pos: al.Pos, Seq: seq, Cigar: al.Cigar, Rev: al.Rev})
		}
		piles := Pileup(len(ref), aligned)
		return CallSNVs(ref, piles, DefaultCallConfig())
	}

	seedexCalls := call(core.New(20))
	found := 0
	falsePos := 0
	for _, v := range seedexCalls {
		if alt, ok := truth[v.Pos]; ok && alt == v.Alt {
			found++
		} else {
			falsePos++
		}
	}
	if found < len(truth)*9/10 {
		t.Fatalf("recovered %d/%d planted SNVs (calls: %d)", found, len(truth), len(seedexCalls))
	}
	if falsePos > 3 {
		t.Fatalf("%d false positives", falsePos)
	}

	fullCalls := call(core.FullBand{Scoring: align.DefaultScoring()})
	if len(fullCalls) != len(seedexCalls) {
		t.Fatalf("SeedEx and full-band pipelines called %d vs %d variants", len(seedexCalls), len(fullCalls))
	}
	for i := range fullCalls {
		if fullCalls[i] != seedexCalls[i] {
			t.Fatalf("variant %d differs: %v vs %v", i, seedexCalls[i], fullCalls[i])
		}
	}
	t.Logf("recovered %d/%d SNVs, %d false positives, calls identical across extenders", found, len(truth), falsePos)
}

func TestCallSNVsThresholds(t *testing.T) {
	ref := []byte{0, 1, 2, 3}
	piles := []Pile{
		{Counts: [4]int{2, 8, 0, 0}, Depth: 10}, // alt A... ref is 0(A): alt must differ
		{Counts: [4]int{9, 1, 0, 0}, Depth: 10}, // pos1 ref C: alt A at 90%
		{Counts: [4]int{1, 0, 2, 0}, Depth: 3},  // below MinDepth
		{Counts: [4]int{0, 0, 1, 9}, Depth: 10}, // pos3 ref T: ref-dominant
	}
	vs := CallSNVs(ref, piles, CallConfig{MinDepth: 8, MinFrac: 0.3})
	if len(vs) != 2 {
		t.Fatalf("expected 2 variants, got %v", vs)
	}
	if vs[0].Pos != 0 || vs[0].Alt != 1 {
		t.Fatalf("variant 0: %+v", vs[0])
	}
	if vs[1].Pos != 1 || vs[1].Alt != 0 {
		t.Fatalf("variant 1: %+v", vs[1])
	}
	if vs[0].String() == "" {
		t.Fatal("empty rendering")
	}
}

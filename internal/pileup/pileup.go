// Package pileup implements the minimal tertiary-analysis step the paper
// motivates (§I: "understanding mutations... variant detection"): a
// per-position base pileup over aligned reads and a naive SNV caller.
// Because SeedEx alignments are bit-identical to full-band alignments,
// variant calls downstream are identical too — the end-to-end property
// this package's tests demonstrate.
package pileup

import (
	"fmt"

	"seedex/internal/align"
)

// AlignedRead is one mapped read in reference coordinates.
type AlignedRead struct {
	Pos   int // 0-based reference start
	Seq   []byte
	Cigar align.Cigar
	Rev   bool // informational; Seq is already reference-oriented
}

// Pile is the per-position base evidence.
type Pile struct {
	// Counts[b] is the number of reads voting base b (codes 0..3) at
	// this position; Depth the total aligned coverage.
	Counts [4]int
	Depth  int
}

// Pileup accumulates base votes over [0, refLen) from the reads' CIGARs
// (soft clips and insertions consume query only; deletions consume
// reference only).
func Pileup(refLen int, reads []AlignedRead) []Pile {
	piles := make([]Pile, refLen)
	for _, r := range reads {
		qi, ri := 0, r.Pos
		for _, e := range r.Cigar {
			switch e.Op {
			case align.OpSoft, align.OpIns:
				qi += e.Len
			case align.OpDel:
				ri += e.Len
			case align.OpMatch:
				for k := 0; k < e.Len; k++ {
					if ri >= 0 && ri < refLen && qi < len(r.Seq) && r.Seq[qi] < 4 {
						piles[ri].Counts[r.Seq[qi]]++
						piles[ri].Depth++
					}
					qi++
					ri++
				}
			}
		}
	}
	return piles
}

// Variant is one called single-nucleotide variant.
type Variant struct {
	Pos      int
	Ref, Alt byte
	Depth    int
	AltCount int
}

// String renders a VCF-flavoured line.
func (v Variant) String() string {
	const bases = "ACGT"
	return fmt.Sprintf("pos=%d %c>%c depth=%d alt=%d", v.Pos+1, bases[v.Ref], bases[v.Alt], v.Depth, v.AltCount)
}

// CallConfig tunes the naive caller.
type CallConfig struct {
	MinDepth int     // minimum coverage to call (default 8)
	MinFrac  float64 // minimum alternate-allele fraction (default 0.3)
}

// DefaultCallConfig returns sensible defaults for ~30x coverage.
func DefaultCallConfig() CallConfig { return CallConfig{MinDepth: 8, MinFrac: 0.3} }

// CallSNVs reports positions whose dominant non-reference base clears
// the depth and fraction thresholds.
func CallSNVs(ref []byte, piles []Pile, cfg CallConfig) []Variant {
	if cfg.MinDepth <= 0 {
		cfg.MinDepth = 8
	}
	if cfg.MinFrac <= 0 {
		cfg.MinFrac = 0.3
	}
	var out []Variant
	for pos, p := range piles {
		if p.Depth < cfg.MinDepth || ref[pos] > 3 {
			continue
		}
		alt, altN := byte(0), -1
		for b := byte(0); b < 4; b++ {
			if b == ref[pos] {
				continue
			}
			if p.Counts[b] > altN {
				alt, altN = b, p.Counts[b]
			}
		}
		if altN <= 0 || float64(altN) < cfg.MinFrac*float64(p.Depth) {
			continue
		}
		// The alternate must also out-vote sequencing noise decisively
		// relative to the reference allele for a haploid-style call.
		out = append(out, Variant{Pos: pos, Ref: ref[pos], Alt: alt, Depth: p.Depth, AltCount: altN})
	}
	return out
}

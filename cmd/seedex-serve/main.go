// Command seedex-serve is the network front-end of the SeedEx system: an
// HTTP/JSON alignment service that coalesces concurrent requests into
// dynamic micro-batches and runs them through the packed (SWAR) extension
// kernels with the speculate-check-rerun workflow.
//
// Usage:
//
//	seedex-serve -addr :8844 -extender seedex -band 20
//	seedex-serve -addr :8844 -ref genome.fa            # enables /v1/map
//	seedex-serve -addr :8844 -shards 4 -route-policy hash
//
// With -shards N the service runs N independent shard units — each its
// own extension engine, micro-batcher, worker pool and circuit breaker —
// behind a routing tier (-route-policy: least-loaded, occupancy, or
// consistent hashing by reference region) with health-aware routing and
// bounded work stealing between shards.
//
// Endpoints: POST /v1/extend, POST /v1/extend/stream (NDJSON),
// POST /v1/map (with -ref), GET /metrics, GET /healthz. SIGINT/SIGTERM
// trigger a graceful drain: in-flight and queued work completes, new work
// is refused with 503.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "seedex-serve:", err)
		os.Exit(1)
	}
}

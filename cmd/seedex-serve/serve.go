package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/driver"
	"seedex/internal/fastx"
	"seedex/internal/faults"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
	"seedex/internal/obs"
	"seedex/internal/refstore"
	"seedex/internal/server"
)

// Build identity, stamped at link time:
//
//	go build -ldflags "-X main.version=v1.2.3 -X main.commit=$(git rev-parse --short HEAD)"
//
// Plain builds report dev/unknown. The values surface as the
// seedex_build_info gauge, the /metrics "build" section, every log
// line's source binary, and each flight dump's meta.json.
var (
	version string
	commit  string
)

// run is the testable daemon body; main wires it to os streams. When
// ready is non-nil it receives the bound listen address once the server
// accepts connections. run returns after a graceful drain (SIGINT or
// SIGTERM) or a listener failure.
func run(args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("seedex-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8844", "listen address")
	extName := fs.String("extender", "seedex", "extension engine: seedex | fullband | banded")
	band := fs.Int("band", 20, "one-sided band (SeedEx and banded engines)")
	mode := fs.String("mode", "strict", "seedex check workflow: strict (bit-identical to full-band) | paper (threshold passes skip the edit machine)")
	maxBatch := fs.Int("max-batch", 64, "flush a micro-batch at this many jobs (1 disables coalescing)")
	flush := fs.Duration("flush", 200*time.Microsecond, "flush a micro-batch this long after its first job arrives (0 = never wait: each batch takes whatever is queued)")
	queueCap := fs.Int("queue", 1024, "admission queue bound; overflow answers 429")
	workers := fs.Int("workers", 0, "batch workers (0 = GOMAXPROCS)")
	refPath := fs.String("ref", "", "reference FASTA; enables the /v1/map endpoint")
	indexPath := fs.String("index", "", "index file for -ref: loaded if it exists, otherwise built and saved")
	indexStore := fs.String("index-store", "", "serve /v1/map from this checksummed container index (built by seedex-index): memory-mapped read-only, hot-reloadable via SIGHUP or POST /admin/reload, with rollback on a bad file")
	prefilter := fs.Bool("prefilter", false, "screen chains with the bit-parallel pre-alignment filter before extension (mappings stay bit-identical; needs -ref)")
	prefilterTh := fs.Float64("prefilter-threshold", 0, "prefilter edit threshold as a fraction of read length (0 = default)")
	maxJobs := fs.Int("max-jobs", 4096, "maximum jobs or reads per request")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful drain budget on shutdown")
	chaos := fs.Float64("chaos", 0, "serve through the simulated FPGA platform with every fault class injecting at this rate (0 = software extender, no device)")
	chaosSeed := fs.Int64("chaos-seed", 1, "deterministic seed for -chaos fault draws")
	shards := fs.Int("shards", 1, "serving shards: each gets its own extension engine, micro-batcher and worker pool behind the routing tier (1 = the unsharded pipeline)")
	routePolicy := fs.String("route-policy", "least-loaded", "routing policy for -shards > 1: least-loaded | occupancy | hash")
	traceSample := fs.Int("trace-sample", 0, "record pipeline spans for 1 in N requests and export them at /debug/traces (0 disables head sampling)")
	traceSlow := fs.Int("trace-slow", 64, "always retain the K slowest requests at /debug/traces/slow, regardless of sampling")
	traceTail := fs.Bool("trace-tail", false, "tail-based retention: every request records its journey, and completions that breached the latency budget, failed, or crossed a steal/reroute/rescue/reload/fault keep the full trace at /debug/journeys")
	traceTailBudget := fs.Duration("trace-tail-budget", 100*time.Millisecond, "latency budget for the tail-retention verdict (and the default SLO latency objective)")
	traceTailKeep := fs.Int("trace-tail-keep", 256, "retained journeys in the tail ring (oldest evicted first)")
	sloLatency := fs.Duration("slo-latency", 0, "latency threshold of the extend-latency SLO objective (0 = the tail budget)")
	sloInterval := fs.Duration("slo-interval", 10*time.Second, "SLO burn-rate sampling cadence (<0 disables the background sampler)")
	flightDir := fs.String("flight-dir", "", "write crash/degradation flight-recorder tarballs here (SIGQUIT, breaker trips, reload rollbacks, SLO fast burn; empty disables the recorder)")
	flightMinIv := fs.Duration("flight-min-interval", 30*time.Second, "debounce between automatic flight dumps (SIGQUIT bypasses it)")
	flightPoll := fs.Duration("flight-poll", 2*time.Second, "degradation watcher cadence: how often breaker trips, reload rollbacks and the SLO fast-burn flag are checked for an automatic dump")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof profiling handlers on this separate address (empty disables them)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One JSON object per stderr line from here on; flag errors above keep
	// the flag package's plain-text usage output.
	logger := obs.NewLogger(stderr, "seedex-serve")
	build := obs.BuildInfo{Version: version, Commit: commit}.WithDefaults()

	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	// server.New panics on an unknown policy; flag input is validated here.
	if !slices.Contains(server.RoutingPolicies(), *routePolicy) {
		return fmt.Errorf("unknown -route-policy %q (valid: %s)", *routePolicy, strings.Join(server.RoutingPolicies(), ", "))
	}

	// Every shard gets its own extension engine, built eagerly so flag
	// errors surface before the listener binds and so the exit summary can
	// walk the per-shard engines. Under -chaos each shard's fault draws
	// decorrelate via seed+i while staying deterministic.
	exts := make([]align.Extender, *shards)
	var ses []*core.SeedEx
	var engines []*driver.Engine
	for i := range exts {
		if *chaos > 0 {
			// Chaos drills run against the device-backed engine: results stay
			// exact (integrity validation + host containment), while /metrics
			// and /healthz expose the injected faults and breaker state.
			if *extName != "seedex" {
				return fmt.Errorf("-chaos requires the seedex extender (device engine), not %q", *extName)
			}
			dcfg := driver.DefaultConfig()
			dcfg.Band = *band
			dcfg.Faults = faults.Uniform(*chaosSeed+int64(i), *chaos)
			dcfg.DeviceTimeout = 10 * time.Millisecond
			eng := driver.NewEngine(dcfg)
			engines = append(engines, eng)
			exts[i] = eng
		} else {
			e, err := core.NamedExtender(*extName, *band)
			if err != nil {
				return err
			}
			if se, ok := e.(*core.SeedEx); ok {
				ses = append(ses, se)
			}
			exts[i] = e
		}
	}
	ext := exts[0]
	switch *mode {
	case "strict":
	case "paper":
		for _, se := range ses {
			se.Config.Mode = core.ModePaper
		}
		if len(engines) > 0 {
			return fmt.Errorf("-chaos runs the device engine, which is strict-mode only")
		}
	default:
		return fmt.Errorf("unknown mode %q (valid: strict, paper)", *mode)
	}

	var aligner *bwamem.Aligner
	if *refPath != "" {
		if *indexStore != "" {
			return fmt.Errorf("-ref and -index-store are mutually exclusive: the store container carries the reference")
		}
		a, err := loadAligner(*refPath, *indexPath, ext, logger)
		if err != nil {
			return err
		}
		if *prefilter {
			a.Opts.Prefilter = true
			a.Opts.PrefilterThreshold = *prefilterTh
			a.Stats = core.NewStats()
		}
		aligner = a
	} else if *prefilter && *indexStore == "" {
		return fmt.Errorf("-prefilter needs the mapping pipeline; set -ref or -index-store")
	}

	tracer := obs.New(obs.Config{
		SampleEvery: *traceSample,
		SlowK:       *traceSlow,
		Tail: obs.TailConfig{
			Enabled: *traceTail,
			Budget:  *traceTailBudget,
			Keep:    *traceTailKeep,
		},
	})
	for _, eng := range engines {
		// Device-level spans (batch attempts, retry backoffs, host reruns)
		// record under the batch key, always retained when tracing is on.
		eng.Device().Trace = tracer
	}

	// The generation store opens after the tracer so reload spans record
	// from the first swap. The initial open is strict: a bad container at
	// startup is an operator error and refuses to serve.
	var store *refstore.Store
	var mapStats *core.Stats
	if *indexStore != "" {
		st, err := refstore.Open(*indexStore, refstore.Options{
			Trace: tracer,
			Logf: func(format string, a ...any) {
				logger.Info(fmt.Sprintf(format, a...))
			},
		})
		if err != nil {
			return fmt.Errorf("opening index store: %w", err)
		}
		store = st
		defer store.Close()
		mapStats = core.NewStats()
	}

	flushIv := *flush
	if flushIv == 0 {
		// The flag default is explicit, so a literal -flush 0 means
		// "never wait", not "use the library default".
		flushIv = server.FlushOpportunistic
	}
	scfg := server.Config{
		Extender:    ext,
		Aligner:     aligner,
		Shards:      *shards,
		RoutePolicy: *routePolicy,
		Batch: server.BatcherConfig{
			MaxBatch:      *maxBatch,
			FlushInterval: flushIv,
			QueueCap:      *queueCap,
			Workers:       *workers,
		},
		MaxJobsPerRequest: *maxJobs,
		Trace:             tracer,
		Build:             build,
		SLO:               server.SLOConfig{LatencyBudget: *sloLatency, Interval: *sloInterval},
		Flight:            obs.FlightConfig{Dir: *flightDir, MinInterval: *flightMinIv},
		FlightPoll:        *flightPoll,
	}
	if *shards > 1 {
		scfg.NewExtender = func(i int) align.Extender { return exts[i] }
	}
	if store != nil {
		opts := bwamem.Options{Prefilter: *prefilter, PrefilterThreshold: *prefilterTh}
		scfg.RefStore = store
		scfg.MapOpts = opts
		scfg.MapStats = mapStats
		scfg.NewAligner = func(r *bwamem.Reference, ix *fmindex.Index) *bwamem.Aligner {
			a := bwamem.NewWithIndex(r, ix, ext)
			a.Opts.Prefilter = opts.Prefilter
			a.Opts.PrefilterThreshold = opts.PrefilterThreshold
			a.Stats = mapStats
			return a
		}
	}
	s := server.New(scfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	var debugServer *http.Server
	if *debugAddr != "" {
		// Profiling stays off the service mux on purpose: the pprof
		// handlers are opt-in and bind their own (typically loopback-only)
		// address, so exposing the service never exposes the profiler.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return derr
		}
		debugServer = &http.Server{Handler: dmux}
		go debugServer.Serve(dln)
		logger.Info(fmt.Sprintf("pprof profiling on http://%s/debug/pprof/", dln.Addr()))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	// SIGQUIT is the operator's flight-recorder trigger: dump the
	// tail-retained journeys, metrics, SLO state and runtime profiles to
	// a tarball (bypassing the automatic-dump debounce) and keep serving.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			path, err := s.FlightDumpForce("sigquit")
			if err != nil {
				logger.Error("flight dump failed", "reason", "sigquit", "err", err.Error())
				continue
			}
			logger.Info("flight dump written", "reason", "sigquit", "path", path)
		}
	}()

	if store != nil {
		// SIGHUP is the operator's reload trigger (the HTTP twin is POST
		// /admin/reload). A failed reload logs and rolls back; the serving
		// generation is never disturbed.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if _, err := store.Reload(); err != nil {
					logger.Error("SIGHUP reload failed (still serving the previous generation)", "err", err.Error())
				}
			}
		}()
	}

	logger.Info(fmt.Sprintf("listening on %s", ln.Addr()),
		"version", build.Version, "commit", build.Commit, "go", build.GoVersion(),
		"extender", *extName, "band", *band, "batch", *maxBatch,
		"flush", flush.String(), "queue", *queueCap)
	if *shards > 1 {
		logger.Info(fmt.Sprintf("%d shards behind the %s routing policy (per-shard engines, breakers and queues)",
			*shards, *routePolicy))
	}
	if tracer != nil && *traceSample > 0 {
		logger.Info(fmt.Sprintf("tracing 1/%d requests (exports at /debug/traces, slowest %d at /debug/traces/slow)",
			*traceSample, *traceSlow))
	}
	if tracer.TailEnabled() {
		logger.Info("tail retention on: breached/failed/eventful journeys kept at /debug/journeys",
			"budget", traceTailBudget.String(), "keep", *traceTailKeep)
	}
	if s.FlightRecorder() != nil {
		logger.Info("flight recorder armed (SIGQUIT, breaker trips, reload rollbacks, SLO fast burn)",
			"dir", *flightDir, "min_interval", flightMinIv.String())
	}
	if len(engines) > 0 {
		logger.Info(fmt.Sprintf("chaos enabled (rate=%g seed=%d): device-backed engine with fault injection",
			*chaos, *chaosSeed))
	}
	if store != nil {
		st := store.Status()
		logger.Info(fmt.Sprintf("/v1/map serving from index store %s (hot reload via SIGHUP or POST /admin/reload)", st.Path),
			"generation", st.Generation, "contigs", st.Contigs, "mmap_bytes", st.MappedBytes,
			"load_ms", st.LoadMs, "warmup_ms", st.WarmupMs)
		if *prefilter {
			logger.Info("prefilter tier on over the index store (mappings bit-identical to filter-off)")
		}
	}
	if aligner != nil {
		logger.Info(fmt.Sprintf("/v1/map enabled (%d contigs)", len(aligner.Contigs.Names)))
		if aligner.Opts.Prefilter {
			th := aligner.Opts.PrefilterThreshold
			if th <= 0 {
				th = bwamem.DefaultPrefilterThreshold
			}
			logger.Info(fmt.Sprintf("prefilter tier on (threshold=%g of read length; mappings bit-identical to filter-off)", th))
		}
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-sig:
	}

	logger.Info("draining (in-flight work completes, new work gets 503)...")
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("drain budget exceeded, closing", "err", err.Error())
		hs.Close()
	}
	if debugServer != nil {
		debugServer.Close()
	}
	s.Close()
	snap := s.Metrics().Snapshot(0, 0)
	logger.Info(fmt.Sprintf("served %d requests, %d jobs in %d batches (mean occupancy %.1f)",
		snap.Requests, snap.Completed, snap.Batches, snap.MeanOccupancy))
	if *shards > 1 {
		for _, sh := range s.ShardSnapshots() {
			logger.Info(fmt.Sprintf("shard %d: %d jobs in %d batches, routed=%d rerouted=%d stolen-from-peers=%d",
				sh.ID, sh.Completed, sh.Batches, sh.Routed, sh.Rerouted, sh.Steals))
		}
	}
	for i, se := range ses {
		if len(ses) > 1 {
			logger.Info(fmt.Sprintf("shard %d: %v", i, se.Stats))
		} else {
			logger.Info(fmt.Sprint(se.Stats))
		}
	}
	if aligner != nil && aligner.Stats != nil {
		psn := aligner.Stats.Snapshot()
		logger.Info(fmt.Sprintf("prefilter summary: enabled=%v pass=%d reject=%d rescued=%d false-pass=%d",
			aligner.Opts.Prefilter, psn.PrefilterPass, psn.PrefilterReject, psn.PrefilterRescued, psn.PrefilterFalsePass))
	} else if aligner != nil {
		logger.Info("prefilter summary: enabled=false")
	}
	if store != nil {
		st := store.Status()
		logger.Info(fmt.Sprintf("index store summary: generation=%d reloads=%d failures=%d rollbacks=%d degraded=%v",
			st.Generation, st.Reloads, st.ReloadFailures, st.Rollbacks, st.DegradedReload))
	}
	if fr := s.FlightRecorder(); fr != nil && fr.Dumps() > 0 {
		logger.Info(fmt.Sprintf("flight recorder summary: %d dumps, last %s", fr.Dumps(), fr.LastPath()))
	}
	for i, eng := range engines {
		prefix := ""
		if len(engines) > 1 {
			prefix = fmt.Sprintf("shard %d: ", i)
		}
		logger.Info(prefix + fmt.Sprint(eng.Device().Stats))
		h := eng.Health()
		logger.Info(fmt.Sprintf("%schaos summary: breaker=%s injected=%d detected=%d retries=%d trips=%d host-only=%d",
			prefix, h.Breaker, h.Injected.Total(), h.Detected, h.Retries, h.Trips, h.HostOnly))
	}
	return nil
}

// loadAligner assembles the mapping pipeline behind /v1/map, loading or
// building the index the same way seedex-align does.
func loadAligner(refPath, indexPath string, ext align.Extender, logger *slog.Logger) (*bwamem.Aligner, error) {
	rf, err := os.Open(refPath)
	if err != nil {
		return nil, err
	}
	refs, err := fastx.ReadFasta(rf)
	rf.Close()
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("no sequences in %s", refPath)
	}
	contigs := make([]bwamem.Contig, len(refs))
	for i, r := range refs {
		contigs[i] = bwamem.Contig{Name: r.Name, Seq: genome.Encode(string(r.Seq))}
	}
	if indexPath != "" {
		if f, ferr := os.Open(indexPath); ferr == nil {
			ref, ix, lerr := bwamem.LoadIndex(f)
			f.Close()
			if lerr != nil {
				return nil, fmt.Errorf("loading %s: %w", indexPath, lerr)
			}
			logger.Info(fmt.Sprintf("loaded index %s (%d contigs)", indexPath, len(ref.Names)))
			return bwamem.NewWithIndex(ref, ix, ext), nil
		}
		ref, ix, berr := bwamem.BuildIndex(contigs)
		if berr != nil {
			return nil, berr
		}
		f, cerr := os.Create(indexPath)
		if cerr != nil {
			return nil, cerr
		}
		if serr := bwamem.SaveIndex(f, ref, ix); serr != nil {
			f.Close()
			return nil, serr
		}
		if cerr := f.Close(); cerr != nil {
			return nil, cerr
		}
		logger.Info(fmt.Sprintf("built and saved index %s", indexPath))
		return bwamem.NewWithIndex(ref, ix, ext), nil
	}
	return bwamem.NewMulti(contigs, ext)
}

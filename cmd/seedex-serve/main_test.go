package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeLifecycle boots the daemon on an ephemeral port, runs a
// request through it, and checks that SIGTERM produces a graceful drain
// and a clean exit.
func TestServeLifecycle(t *testing.T) {
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-band", "16", "-flush", "1ms"}, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	body := `{"jobs":[{"query":"ACGTACGTACGT","target":"ACGTACGTACGTAA","h0":30}]}`
	resp, err := http.Post(base+"/v1/extend", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/extend: %v", err)
	}
	var out struct {
		Results []struct {
			Global int `json:"global"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("extend: status %d, %d results", resp.StatusCode, len(out.Results))
	}
	if out.Results[0].Global <= 30 {
		t.Errorf("global score %d, want > h0 for a matching extension", out.Results[0].Global)
	}

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status=%v", err, resp)
	} else {
		resp.Body.Close()
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nstderr: %s", stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"listening on", "draining", "served"} {
		if !strings.Contains(log, want) {
			t.Errorf("stderr missing %q:\n%s", want, log)
		}
	}
}

// TestServeBadFlags checks flag validation paths without binding a port.
func TestServeBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-extender", "bogus"}, &stderr, nil); err == nil {
		t.Fatal("unknown extender accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the bad extender", err)
	}
	if err := run([]string{"-ref", "/nonexistent/ref.fa"}, &stderr, nil); err == nil {
		t.Fatal("missing reference accepted")
	}
}

// TestServeMapFlow boots with a tiny on-disk reference and exercises
// /v1/map end to end.
func TestServeMapFlow(t *testing.T) {
	ref := t.TempDir() + "/ref.fa"
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	for i := 0; i < 900; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
	}
	seq := sb.String()
	if err := os.WriteFile(ref, []byte(">chr1\n"+seq+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-ref", ref}, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	read := seq[100:250]
	body := fmt.Sprintf(`{"reads":[{"name":"r1","seq":%q}]}`, read)
	resp, err := http.Post("http://"+addr+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	var out struct {
		Results []struct {
			Mapped bool `json:"mapped"`
			RName  string
			Pos    int
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("map: status %d, %d results", resp.StatusCode, len(out.Results))
	}
	if !out.Results[0].Mapped || out.Results[0].RName != "chr1" || out.Results[0].Pos != 101 {
		t.Errorf("mapping = %+v, want mapped at chr1:101", out.Results[0])
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

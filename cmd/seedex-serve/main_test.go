package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"seedex/internal/bwamem"
	"seedex/internal/genome"
	"seedex/internal/refstore"
)

// TestServeLifecycle boots the daemon on an ephemeral port, runs a
// request through it, and checks that SIGTERM produces a graceful drain
// and a clean exit.
func TestServeLifecycle(t *testing.T) {
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-band", "16", "-flush", "1ms"}, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	body := `{"jobs":[{"query":"ACGTACGTACGT","target":"ACGTACGTACGTAA","h0":30}]}`
	resp, err := http.Post(base+"/v1/extend", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/extend: %v", err)
	}
	var out struct {
		Results []struct {
			Global int `json:"global"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("extend: status %d, %d results", resp.StatusCode, len(out.Results))
	}
	if out.Results[0].Global <= 30 {
		t.Errorf("global score %d, want > h0 for a matching extension", out.Results[0].Global)
	}

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status=%v", err, resp)
	} else {
		resp.Body.Close()
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nstderr: %s", stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"listening on", "draining", "served"} {
		if !strings.Contains(log, want) {
			t.Errorf("stderr missing %q:\n%s", want, log)
		}
	}
}

// TestServeBadFlags checks flag validation paths without binding a port.
func TestServeBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-extender", "bogus"}, &stderr, nil); err == nil {
		t.Fatal("unknown extender accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the bad extender", err)
	}
	if err := run([]string{"-ref", "/nonexistent/ref.fa"}, &stderr, nil); err == nil {
		t.Fatal("missing reference accepted")
	}
}

// TestServeChaosFlag boots the daemon with -chaos: extensions serve
// through the fault-injected device engine, /metrics exposes the faults
// section, and the drain summary reports the chaos counters.
func TestServeChaosFlag(t *testing.T) {
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-chaos", "0.1", "-chaos-seed", "3", "-flush", "1ms"}, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	var jobs strings.Builder
	jobs.WriteString(`{"jobs":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			jobs.WriteByte(',')
		}
		jobs.WriteString(`{"query":"ACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTAA","h0":30}`)
	}
	jobs.WriteString(`]}`)
	resp, err := http.Post(base+"/v1/extend", "application/json", strings.NewReader(jobs.String()))
	if err != nil {
		t.Fatalf("POST /v1/extend: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend under chaos: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var met struct {
		Faults *struct {
			Breaker string `json:"breaker"`
		} `json:"faults"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	mresp.Body.Close()
	if met.Faults == nil || met.Faults.Breaker == "" {
		t.Fatalf("chaos server /metrics has no faults section")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	if log := stderr.String(); !strings.Contains(log, "chaos summary") || !strings.Contains(log, "chaos enabled") {
		t.Errorf("stderr missing chaos reporting:\n%s", log)
	}

	// Flag validation: -chaos needs the device engine, which is strict-only.
	if err := run([]string{"-chaos", "0.1", "-extender", "fullband"}, &stderr, nil); err == nil {
		t.Fatal("-chaos with a software extender accepted")
	}
	if err := run([]string{"-chaos", "0.1", "-mode", "paper"}, &stderr, nil); err == nil {
		t.Fatal("-chaos with paper mode accepted")
	}
}

// TestServeMapFlow boots with a tiny on-disk reference and exercises
// /v1/map end to end.
func TestServeMapFlow(t *testing.T) {
	ref := t.TempDir() + "/ref.fa"
	rng := rand.New(rand.NewSource(7))
	var sb strings.Builder
	for i := 0; i < 900; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
	}
	seq := sb.String()
	if err := os.WriteFile(ref, []byte(">chr1\n"+seq+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-ref", ref}, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	read := seq[100:250]
	body := fmt.Sprintf(`{"reads":[{"name":"r1","seq":%q}]}`, read)
	resp, err := http.Post("http://"+addr+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	var out struct {
		Results []struct {
			Mapped bool `json:"mapped"`
			RName  string
			Pos    int
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("map: status %d, %d results", resp.StatusCode, len(out.Results))
	}
	if !out.Results[0].Mapped || out.Results[0].RName != "chr1" || out.Results[0].Pos != 101 {
		t.Errorf("mapping = %+v, want mapped at chr1:101", out.Results[0])
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestServeIndexStore boots the daemon from a checksummed container
// index, maps a read, hot-reloads via SIGHUP, and checks the lifecycle
// banners plus the flag validation paths.
func TestServeIndexStore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	for i := 0; i < 1200; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
	}
	seq := sb.String()
	ref, ix, err := bwamem.BuildIndex([]bwamem.Contig{{Name: "chr1", Seq: genome.Encode(seq)}})
	if err != nil {
		t.Fatal(err)
	}
	store := t.TempDir() + "/ref.rix"
	if _, err := refstore.WriteFile(store, ref, ix); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-index-store", store, "-flush", "1ms"}, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	read := seq[200:350]
	body := fmt.Sprintf(`{"reads":[{"name":"r1","seq":%q}]}`, read)
	resp, err := http.Post(base+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/map: %v", err)
	}
	var out struct {
		Results []struct {
			Mapped bool `json:"mapped"`
			RName  string
			Pos    int
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("map: status %d, %d results", resp.StatusCode, len(out.Results))
	}
	if !out.Results[0].Mapped || out.Results[0].RName != "chr1" || out.Results[0].Pos != 201 {
		t.Errorf("mapping = %+v, want mapped at chr1:201", out.Results[0])
	}

	// SIGHUP swaps in a fresh generation of the same file.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		var met struct {
			Index *struct {
				Generation uint64 `json:"generation"`
				Reloads    int64  `json:"reloads"`
			} `json:"index"`
		}
		if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
			t.Fatalf("decoding /metrics: %v", err)
		}
		mresp.Body.Close()
		if met.Index == nil {
			t.Fatal("/metrics has no index section")
		}
		if met.Index.Generation >= 2 && met.Index.Reloads >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never landed: %+v", met.Index)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Mapping is unchanged across the swap.
	resp, err = http.Post(base+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/map after reload: %v status=%v", err, resp)
	}
	resp.Body.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nstderr: %s", stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"serving from index store", "generation 2 live", "index store summary"} {
		if !strings.Contains(log, want) {
			t.Errorf("stderr missing %q:\n%s", want, log)
		}
	}

	// Flag validation.
	if err := run([]string{"-ref", "/tmp/x.fa", "-index-store", store}, &stderr, nil); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-ref with -index-store accepted: %v", err)
	}
	if err := run([]string{"-index-store", "/nonexistent/ref.rix"}, &stderr, nil); err == nil {
		t.Fatal("missing index store accepted")
	}
}

// TestServeSharded boots the daemon with a 2-shard pool, checks the
// cluster surfaces (metrics + banner), and validates the routing flags.
func TestServeSharded(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-shards", "0"}, &stderr, nil); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("zero shards accepted: %v", err)
	}
	if err := run([]string{"-shards", "2", "-route-policy", "bogus"}, &stderr, nil); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown policy accepted: %v", err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-band", "16", "-flush", "1ms",
			"-shards", "2", "-route-policy", "hash"}, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	body := `{"jobs":[{"query":"ACGTACGTACGT","target":"ACGTACGTACGTAA","h0":30}]}`
	resp, err := http.Post(base+"/v1/extend", "application/json", strings.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/extend: %v status=%v", err, resp)
	}
	resp.Body.Close()

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var met struct {
		Cluster *struct {
			Shards int    `json:"shards"`
			Policy string `json:"route_policy"`
		} `json:"cluster"`
		Shards []struct {
			ID int `json:"id"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	mresp.Body.Close()
	if met.Cluster == nil || met.Cluster.Shards != 2 || met.Cluster.Policy != "hash" {
		t.Fatalf("cluster section: %+v", met.Cluster)
	}
	if len(met.Shards) != 2 {
		t.Fatalf("per-shard metrics: %d entries, want 2", len(met.Shards))
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM\nstderr: %s", stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"2 shards behind the hash routing policy", "shard 0:", "shard 1:"} {
		if !strings.Contains(log, want) {
			t.Errorf("stderr missing %q:\n%s", want, log)
		}
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"seedex/internal/fastx"
)

func TestReadsimRoundTrip(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "g.fa")
	readsPath := filepath.Join(dir, "r.fq")
	var stderr bytes.Buffer
	err := run([]string{
		"-ref-len", "20000", "-reads", "50", "-read-len", "80",
		"-out-ref", refPath, "-out-reads", readsPath, "-seed", "3",
	}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	refs, err := fastx.ReadFasta(rf)
	if err != nil || len(refs) != 1 || len(refs[0].Seq) != 20000 {
		t.Fatalf("bad reference: %v, %d records", err, len(refs))
	}
	qf, err := os.Open(readsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	reads, err := fastx.ReadFastq(qf)
	if err != nil || len(reads) != 50 {
		t.Fatalf("bad reads: %v, %d records", err, len(reads))
	}
	for _, r := range reads {
		if len(r.Seq) != 80 {
			t.Fatalf("read %s has length %d", r.Name, len(r.Seq))
		}
	}
}

func TestReadsimDeterministic(t *testing.T) {
	dir := t.TempDir()
	var stderr bytes.Buffer
	gen := func(name string) string {
		p := filepath.Join(dir, name)
		err := run([]string{"-ref-len", "5000", "-reads", "10", "-out-ref", p + ".fa", "-out-reads", p + ".fq", "-seed", "9"}, &stderr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(p + ".fq")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if gen("a") != gen("b") {
		t.Fatal("same seed produced different reads")
	}
}

func TestReadsimBadConfig(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-ref-len", "50", "-read-len", "101", "-out-ref", filepath.Join(t.TempDir(), "x.fa"), "-out-reads", filepath.Join(t.TempDir(), "x.fq")}, &stderr); err == nil {
		t.Fatal("read longer than reference must error")
	}
}

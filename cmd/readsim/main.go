// Command readsim generates a synthetic reference genome and simulated
// short reads with an Illumina-like error profile — the workload
// substitute for the paper's NA12878 dataset (see DESIGN.md).
//
// Usage:
//
//	readsim -ref-len 1000000 -reads 50000 -out-ref genome.fa -out-reads reads.fq
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"seedex/internal/fastx"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "readsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("readsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	refLen := fs.Int("ref-len", 1_000_000, "reference length in bp")
	nReads := fs.Int("reads", 10_000, "number of reads")
	readLen := fs.Int("read-len", 101, "read length in bp")
	snp := fs.Float64("snp", 0.001, "variant substitution rate")
	indel := fs.Float64("indel", 0.0001, "variant indel rate")
	errRate := fs.Float64("err", 0.002, "sequencing error rate")
	garbage := fs.Float64("garbage-tails", 0, "fraction of reads with garbage 3' tails")
	repeats := fs.Float64("repeats", 0.05, "genome repeat fraction")
	seed := fs.Int64("seed", 1, "RNG seed")
	outRef := fs.String("out-ref", "genome.fa", "reference FASTA output")
	outReads := fs.String("out-reads", "reads.fq", "reads FASTQ output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	ref := genome.Simulate(genome.SimConfig{Length: *refLen, RepeatFraction: *repeats}, rng)
	cfg := readsim.Config{
		N: *nReads, ReadLen: *readLen,
		SNPRate: *snp, IndelRate: *indel, ErrRate: *errRate,
		RevCompFraction: 0.5, GarbageTailFraction: *garbage,
	}
	reads := readsim.Simulate(ref, cfg, rng)
	if reads == nil && *nReads > 0 {
		return fmt.Errorf("read length %d exceeds reference length %d", *readLen, *refLen)
	}

	rf, err := os.Create(*outRef)
	if err != nil {
		return err
	}
	err = fastx.WriteFasta(rf, []fastx.FastaRecord{{
		Name: "chrSim",
		Desc: fmt.Sprintf("synthetic %d bp seed=%d", *refLen, *seed),
		Seq:  []byte(genome.Decode(ref)),
	}})
	if cerr := rf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	fq := make([]fastx.FastqRecord, len(reads))
	for i, r := range reads {
		fq[i] = fastx.FastqRecord{Name: r.ID, Seq: []byte(genome.Decode(r.Seq)), Qual: r.Qual}
	}
	qf, err := os.Create(*outReads)
	if err != nil {
		return err
	}
	err = fastx.WriteFastq(qf, fq)
	if cerr := qf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "wrote %s (%d bp) and %s (%d reads)\n", *outRef, *refLen, *outReads, len(reads))
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchAllSmoke(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-fig", "all", "-reads", "80", "-ref", "30000"}, &out, &stderr); err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	for _, section := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 13", "Figure 14",
		"Figure 15", "Table II", "Figure 16", "Figure 17", "Table III", "Figure 18",
	} {
		if !strings.Contains(out.String(), section) {
			t.Fatalf("output missing %q section", section)
		}
	}
}

func TestBenchSingleFigure(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-fig", "t3"}, &out, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Rerun core") {
		t.Fatalf("table III content missing: %q", out.String())
	}
	if strings.Contains(out.String(), "Figure 2") {
		t.Fatal("unrequested sections printed")
	}
	// Static figures must not build a workload.
	if strings.Contains(stderr.String(), "building workload") {
		t.Fatal("workload built unnecessarily")
	}
}

func TestBenchExtendJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_extend.json")
	var out, stderr bytes.Buffer
	err := run([]string{"-fig", "extend", "-reads", "40", "-ref", "30000",
		"-extend-rounds", "1", "-extend-json", path, "-extend-pr", "test-run"}, &out, &stderr)
	if err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchmark JSON not written: %v", err)
	}
	var hist struct {
		Runs []struct {
			PR      string `json:"pr"`
			ReadLen int    `json:"read_len"`
			Kernels []struct {
				Kernel      string  `json:"kernel"`
				NsPerOp     float64 `json:"ns_per_op"`
				CellsPerSec float64 `json:"cells_per_sec"`
				AllocsPerOp float64 `json:"allocs_per_op"`
			} `json:"kernels"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(hist.Runs) != 1 {
		t.Fatalf("history has %d runs, want 1", len(hist.Runs))
	}
	rep := hist.Runs[0]
	if rep.PR != "test-run" {
		t.Fatalf("run labeled %q, want test-run", rep.PR)
	}
	if rep.ReadLen != 150 {
		t.Fatalf("read length %d, want 150", rep.ReadLen)
	}
	seen := map[string]bool{}
	for _, k := range rep.Kernels {
		seen[k.Kernel] = true
		if k.NsPerOp <= 0 || k.CellsPerSec <= 0 {
			t.Fatalf("kernel %s has empty measurements: %+v", k.Kernel, k)
		}
	}
	for _, want := range []string{"full/seed", "full/workspace", "banded/seed",
		"banded/workspace", "checked/pooled", "checked/workspace"} {
		if !seen[want] {
			t.Fatalf("kernel %q missing from report (have %v)", want, seen)
		}
	}

	// Append-only: a second run with a new label grows the history.
	err = run([]string{"-fig", "extend", "-reads", "40", "-ref", "30000",
		"-extend-rounds", "1", "-extend-json", path, "-extend-pr", "second"}, &out, &stderr)
	if err != nil {
		t.Fatalf("second run: %v (%s)", err, stderr.String())
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("invalid JSON after append: %v", err)
	}
	if len(hist.Runs) != 2 || hist.Runs[0].PR != "test-run" || hist.Runs[1].PR != "second" {
		t.Fatalf("history after append: %d runs (%v), want [test-run second]",
			len(hist.Runs), hist.Runs)
	}

	// Regression check against the just-written history passes: the same
	// machine measuring the same workload cannot be 10x slower... but it
	// can be noisy, so use a generous tolerance.
	err = run([]string{"-fig", "extend", "-reads", "40", "-ref", "30000",
		"-extend-rounds", "1", "-extend-json", path, "-extend-pr", "third",
		"-extend-baseline", path, "-extend-tolerance", "0.95"}, &out, &stderr)
	if err != nil {
		t.Fatalf("regression check: %v (%s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression check:") {
		t.Fatalf("regression check did not report: %s", stderr.String())
	}

	// An impossible baseline trips the regression error.
	err = run([]string{"-fig", "extend", "-reads", "40", "-ref", "30000",
		"-extend-rounds", "1", "-extend-json", filepath.Join(t.TempDir(), "new.json"),
		"-extend-baseline", writeInflatedBaseline(t, data), "-extend-tolerance", "0.10"}, &out, &stderr)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("inflated baseline must trip the regression check, got %v", err)
	}
}

// writeInflatedBaseline rewrites a history with a 1000x banded/batch
// baseline so any real measurement regresses against it.
func writeInflatedBaseline(t *testing.T, data []byte) string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, run := range doc["runs"].([]any) {
		for _, k := range run.(map[string]any)["kernels"].([]any) {
			km := k.(map[string]any)
			if km["kernel"] == "banded/batch" {
				km["cells_per_sec"] = km["cells_per_sec"].(float64) * 1000
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExtendHistoryLegacy converts a pre-history single-object file into
// runs[0] labeled "legacy" on the first append.
func TestExtendHistoryLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_extend.json")
	legacy := `{"read_len": 150, "problems": 10, "band": 21, "kernels": [{"kernel": "banded/batch", "ns_per_op": 1, "cells_per_sec": 2, "allocs_per_op": 0}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, stderr bytes.Buffer
	err := run([]string{"-fig", "extend", "-reads", "40", "-ref", "30000",
		"-extend-rounds", "1", "-extend-json", path, "-extend-pr", "next"}, &out, &stderr)
	if err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Runs []struct {
			PR      string `json:"pr"`
			ReadLen int    `json:"read_len"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Runs) != 2 || hist.Runs[0].PR != "legacy" || hist.Runs[1].PR != "next" {
		t.Fatalf("legacy conversion: got %+v, want [legacy next]", hist.Runs)
	}
}

func TestBenchBadFlag(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &out, &stderr); err == nil {
		t.Fatal("unknown flag must error")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchAllSmoke(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-fig", "all", "-reads", "80", "-ref", "30000"}, &out, &stderr); err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	for _, section := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 13", "Figure 14",
		"Figure 15", "Table II", "Figure 16", "Figure 17", "Table III", "Figure 18",
	} {
		if !strings.Contains(out.String(), section) {
			t.Fatalf("output missing %q section", section)
		}
	}
}

func TestBenchSingleFigure(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-fig", "t3"}, &out, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Rerun core") {
		t.Fatalf("table III content missing: %q", out.String())
	}
	if strings.Contains(out.String(), "Figure 2") {
		t.Fatal("unrequested sections printed")
	}
	// Static figures must not build a workload.
	if strings.Contains(stderr.String(), "building workload") {
		t.Fatal("workload built unnecessarily")
	}
}

func TestBenchExtendJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_extend.json")
	var out, stderr bytes.Buffer
	err := run([]string{"-fig", "extend", "-reads", "40", "-ref", "30000",
		"-extend-rounds", "1", "-extend-json", path}, &out, &stderr)
	if err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchmark JSON not written: %v", err)
	}
	var rep struct {
		ReadLen int `json:"read_len"`
		Kernels []struct {
			Kernel      string  `json:"kernel"`
			NsPerOp     float64 `json:"ns_per_op"`
			CellsPerSec float64 `json:"cells_per_sec"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"kernels"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.ReadLen != 150 {
		t.Fatalf("read length %d, want 150", rep.ReadLen)
	}
	seen := map[string]bool{}
	for _, k := range rep.Kernels {
		seen[k.Kernel] = true
		if k.NsPerOp <= 0 || k.CellsPerSec <= 0 {
			t.Fatalf("kernel %s has empty measurements: %+v", k.Kernel, k)
		}
	}
	for _, want := range []string{"full/seed", "full/workspace", "banded/seed",
		"banded/workspace", "checked/pooled", "checked/workspace"} {
		if !seen[want] {
			t.Fatalf("kernel %q missing from report (have %v)", want, seen)
		}
	}
}

func TestBenchBadFlag(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &out, &stderr); err == nil {
		t.Fatal("unknown flag must error")
	}
}

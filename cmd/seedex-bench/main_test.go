package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchAllSmoke(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-fig", "all", "-reads", "80", "-ref", "30000"}, &out, &stderr); err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	for _, section := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 13", "Figure 14",
		"Figure 15", "Table II", "Figure 16", "Figure 17", "Table III", "Figure 18",
	} {
		if !strings.Contains(out.String(), section) {
			t.Fatalf("output missing %q section", section)
		}
	}
}

func TestBenchSingleFigure(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-fig", "t3"}, &out, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Rerun core") {
		t.Fatalf("table III content missing: %q", out.String())
	}
	if strings.Contains(out.String(), "Figure 2") {
		t.Fatal("unrequested sections printed")
	}
	// Static figures must not build a workload.
	if strings.Contains(stderr.String(), "building workload") {
		t.Fatal("workload built unnecessarily")
	}
}

func TestBenchBadFlag(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &out, &stderr); err == nil {
		t.Fatal("unknown flag must error")
	}
}

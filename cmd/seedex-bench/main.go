// Command seedex-bench regenerates every table and figure of the paper's
// evaluation section (see the experiment index in DESIGN.md).
//
// Usage:
//
//	seedex-bench -fig all
//	seedex-bench -fig 14 -reads 2000 -ref 200000
//	seedex-bench -fig 16 -seed 42
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"seedex/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "seedex-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("seedex-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure/table to regenerate: 2,3,4,13,14,15,16,17,18,t2,t3,extend,serve or 'all'")
	refLen := fs.Int("ref", 200_000, "synthetic reference length (bp)")
	nReads := fs.Int("reads", 1000, "simulated read count")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	workers := fs.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS)")
	extendJSON := fs.String("extend-json", "BENCH_extend.json", "output path for the extension kernel benchmark (-fig extend)")
	extendBand := fs.Int("extend-band", 21, "one-sided band for the checked paths of -fig extend")
	extendRounds := fs.Int("extend-rounds", 3, "timing rounds per kernel for -fig extend")
	extendReadLen := fs.Int("extend-readlen", 150, "read length for -fig extend: 150 (standard trajectory) or 100 (8-bit SWAR tier dominates)")
	extendPR := fs.String("extend-pr", "dev", "label recorded with the appended -fig extend run (the PR it measures)")
	extendBaseline := fs.String("extend-baseline", "", "history file to regression-check the -fig extend run against: error when banded/batch cells/s drops more than -extend-tolerance below the baseline's latest same-read-length run")
	extendTolerance := fs.Float64("extend-tolerance", 0.10, "fractional banded/batch throughput drop tolerated by -extend-baseline")
	serveJSON := fs.String("serve-json", "BENCH_serve.json", "output path for the alignment-service benchmark (-fig serve)")
	serveDur := fs.Duration("serve-dur", time.Second, "measurement window per concurrency point for -fig serve")
	serveConc := fs.String("serve-conc", "4,16,32,64", "comma-separated client concurrencies for -fig serve")
	serveJobs := fs.Int("serve-jobs", 8, "jobs per request for -fig serve")
	serveStrict := fs.Bool("serve-strict", false, "serve ModeStrict (bit-identical checks) instead of the paper workflow for -fig serve")
	serveBatch := fs.Int("serve-batch", 64, "micro-batch size for the batched -fig serve configuration")
	serveFlush := fs.Duration("serve-flush", 100*time.Microsecond, "micro-batch flush interval for -fig serve")
	serveTrace := fs.Int("serve-trace", 100, "trace sample rate for the batched-traced -fig serve configuration (1 in N requests; negative skips the traced configuration)")
	servePR := fs.String("serve-pr", "dev", "label recorded with the appended -fig serve run (the PR it measures)")
	serveShards := fs.String("serve-shards", "2,4,8", "comma-separated shard counts for the sharded -fig serve configurations ('batched' is the 1-shard point; empty skips the curve)")
	servePolicy := fs.String("serve-policy", "least-loaded", "routing policy for the sharded -fig serve configurations")
	prefilter := fs.Bool("prefilter", false, "for -fig serve: also benchmark the /v1/map path with the pre-alignment filter tier on vs off (equivalence-checked; recorded under 'prefilter' in the run entry)")
	prefilterTh := fs.Float64("prefilter-threshold", 0, "prefilter edit threshold as a fraction of read length for -prefilter (0 = default)")
	indexBench := fs.Bool("index-bench", false, "for -fig serve: also benchmark the reference index lifecycle — container build/publish/load/warmup time and mmap-served /v1/map throughput under a hot-reload storm (recorded under 'index' in the run entry)")
	chaos := fs.Float64("chaos", 0, "for -fig serve: serve through the simulated FPGA device with every fault class injecting at this rate (measures the throughput cost of fault tolerance)")
	chaosSeed := fs.Int64("chaos-seed", 1, "deterministic seed for -chaos fault draws")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "seedex-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "seedex-bench: memprofile:", err)
			}
		}()
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	needWorkload := all || want["2"] || want["3"] || want["14"] || want["16"] || want["17"] || want["ablations"]

	var w *bench.Workload
	if needWorkload {
		fmt.Fprintf(stderr, "building workload: %d bp reference, %d reads (seed %d)...\n", *refLen, *nReads, *seed)
		var err error
		w, err = bench.BuildWorkload(*refLen, *nReads, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "harvested %d seed extensions (%.1f per read)\n\n",
			len(w.Problems), float64(len(w.Problems))/float64(*nReads))
	}

	section := func(title string) { fmt.Fprintf(stdout, "== %s ==\n", title) }

	if all || want["2"] {
		section("Figure 2: band distribution (estimated vs used)")
		t, _, _ := bench.Fig02(w)
		fmt.Fprintln(stdout, t)
	}
	if all || want["3"] {
		section("Figure 3: band vs software kernel execution time")
		fmt.Fprintln(stdout, bench.Fig03(w, []int{5, 11, 21, 41, 61, 81, 101}, 2000))
	}
	if all || want["4"] {
		section("Figure 4: band vs modeled hardware resources")
		fmt.Fprintln(stdout, bench.Fig04([]int{5, 11, 21, 41, 61, 81, 101}))
	}
	if all || want["13"] {
		section("Figure 13: output differences vs band (BSW heuristic vs SeedEx)")
		fmt.Fprintln(stderr, "building indel-rich Figure 13 workload...")
		w13, err := bench.Fig13Workload(*refLen, *nReads, *seed)
		if err != nil {
			return err
		}
		t, err := bench.Fig13(w13, []int{3, 5, 11, 21, 41, 81})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	}
	if all || want["14"] {
		section("Figure 14: optimality-check passing rates vs band")
		fmt.Fprintln(stdout, bench.Fig14(w, []int{5, 11, 21, 31, 41, 61, 81, 101}))
	}
	if all || want["15"] {
		section("Figure 15: SeedEx FPGA LUT breakdown")
		fmt.Fprintln(stdout, bench.Fig15())
	}
	if all || want["t2"] || want["table2"] {
		section("Table II: seeding + SeedEx resource utilization")
		fmt.Fprintln(stdout, bench.Table2())
	}
	if all || want["16"] {
		section("Figure 16: area and iso-area throughput")
		a, l, c := bench.Fig16(w)
		fmt.Fprintln(stdout, a)
		fmt.Fprintln(stdout, l)
		fmt.Fprintln(stdout, c)
	}
	if all || want["17"] {
		section("Figure 17: end-to-end time breakdown")
		t, err := bench.Fig17(w, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	}
	if all || want["t3"] || want["table3"] {
		section("Table III: ASIC SeedEx area and power")
		fmt.Fprintln(stdout, bench.Table3())
	}
	if all || want["18"] {
		section("Figure 18: ASIC comparator bars")
		fmt.Fprintln(stdout, bench.Fig18())
	}
	if want["extend"] { // not part of 'all': it writes a file and takes timing-quality minutes
		section(fmt.Sprintf("Extension kernel benchmark (%d bp workload)", *extendReadLen))
		fmt.Fprintf(stderr, "building %d bp workload: %d bp reference, %d reads (seed %d)...\n", *extendReadLen, *refLen, *nReads, *seed)
		build := bench.Workload150
		if *extendReadLen == 100 {
			build = bench.Workload100
		}
		wext, err := build(*refLen, *nReads, *seed)
		if err != nil {
			return err
		}
		rep := bench.ExtendBench(wext, *extendBand, *extendRounds)
		fmt.Fprintln(stdout, rep)
		// BENCH_extend.json is an append-only history: each invocation adds
		// one labeled run, so the file carries the perf trajectory across
		// PRs instead of only the most recent snapshot.
		hist, err := bench.ReadExtendHistory(*extendJSON)
		if err != nil {
			return err
		}
		hist.Runs = append(hist.Runs, bench.ExtendRun{PR: *extendPR, ExtendBenchReport: rep})
		data, err := hist.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*extendJSON, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s (%d runs)\n", *extendJSON, len(hist.Runs))
		if *extendBaseline != "" {
			if err := regressCheck(rep, *extendBaseline, *extendTolerance, stderr); err != nil {
				return err
			}
		}
	}
	if want["serve"] { // not part of 'all': it writes a file and load-tests for seconds
		section("Alignment service: micro-batched vs unbatched throughput")
		fmt.Fprintf(stderr, "building 150 bp workload: %d bp reference, %d reads (seed %d)...\n", *refLen, *nReads, *seed)
		wsrv, err := bench.Workload150(*refLen, *nReads, *seed)
		if err != nil {
			return err
		}
		var concs []int
		for _, f := range strings.Split(*serveConc, ",") {
			var c int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &c); err != nil || c <= 0 {
				return fmt.Errorf("bad -serve-conc entry %q", f)
			}
			concs = append(concs, c)
		}
		var shardCounts []int
		for _, f := range strings.Split(*serveShards, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			var n int
			if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n <= 0 {
				return fmt.Errorf("bad -serve-shards entry %q", f)
			}
			if n > 1 {
				shardCounts = append(shardCounts, n)
			}
		}
		rep := bench.ServeBench(wsrv, bench.ServeBenchConfig{
			MaxBatch:       *serveBatch,
			Flush:          *serveFlush,
			Strict:         *serveStrict,
			JobsPerRequest: *serveJobs,
			Concurrency:    concs,
			Duration:       *serveDur,
			ChaosRate:      *chaos,
			ChaosSeed:      *chaosSeed,
			TraceSample:    *serveTrace,
			Shards:         shardCounts,
			RoutePolicy:    *servePolicy,
		})
		fmt.Fprintln(stdout, rep)
		if *prefilter {
			section("Pre-alignment filter tier: /v1/map throughput, filter on vs off")
			fmt.Fprintln(stderr, "building repeat+decoy mapping workload and equivalence corpus...")
			mrep, err := bench.MapServeBench(bench.MapBenchConfig{
				Threshold:   *prefilterTh,
				Concurrency: concs,
				Duration:    *serveDur,
				Seed:        *seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, mrep)
			rep.Prefilter = &mrep
		}
		if *indexBench {
			section("Reference index lifecycle: build/publish/load/warmup and mmap-served /v1/map")
			fmt.Fprintf(stderr, "building %d bp reference container and mapping workload (seed %d)...\n", *refLen, *seed)
			irep, err := bench.IndexServeBench(bench.IndexBenchConfig{
				RefLen:      *refLen,
				Concurrency: concs,
				Duration:    *serveDur,
				Seed:        *seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, irep)
			rep.Index = &irep
		}
		// BENCH_serve.json is an append-only history like BENCH_extend.json:
		// each invocation adds one labeled run (a legacy single-report file
		// converts in place, keeping its measurement as the first point).
		hist, err := bench.ReadServeHistory(*serveJSON)
		if err != nil {
			return err
		}
		hist.Runs = append(hist.Runs, bench.ServeRun{PR: *servePR, ServeBenchReport: rep})
		data, err := hist.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*serveJSON, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s (%d runs)\n", *serveJSON, len(hist.Runs))
	}
	if all || want["ablations"] {
		section("Ablation: edit-machine seeding strategy")
		fmt.Fprintln(stdout, bench.AblationEditSeeding(w, []int{11, 21, 41}))
		section("Ablation: SeedEx clients per memory channel (paper: 4)")
		fmt.Fprintln(stdout, bench.AblationClientsPerCluster(w))
		section("Ablation: banding strategies (fixed / adaptive / SeedEx)")
		fmt.Fprintln(stdout, bench.AblationBandingStrategies(w, []int{5, 21, 41}))
		section("Ablation: BSW cores per edit machine (paper: 3)")
		fmt.Fprintln(stdout, bench.AblationBSWEditRatio(w))
	}
	return nil
}

// regressCheck compares the fresh run's banded/batch throughput against
// the latest same-read-length run of the baseline history (the committed
// BENCH_extend.json in CI) and errors when it dropped by more than the
// tolerated fraction. The hot-path batch kernel is the one row whose
// regressions matter release-to-release; everything else in the report is
// context.
func regressCheck(rep bench.ExtendBenchReport, baselinePath string, tolerance float64, stderr io.Writer) error {
	base, err := bench.ReadExtendHistory(baselinePath)
	if err != nil {
		return fmt.Errorf("regression baseline: %w", err)
	}
	prev := base.LatestFor(rep.ReadLen)
	if prev == nil {
		fmt.Fprintf(stderr, "regression check: no %d bp baseline run in %s, skipping\n", rep.ReadLen, baselinePath)
		return nil
	}
	const row = "banded/batch"
	got, want := rep.Kernel(row), prev.Kernel(row)
	if got == nil || want == nil {
		return fmt.Errorf("regression check: kernel %q missing (run has it: %v, baseline %s/%s has it: %v)",
			row, got != nil, baselinePath, prev.PR, want != nil)
	}
	floor := want.CellsPerSec * (1 - tolerance)
	if got.CellsPerSec < floor {
		return fmt.Errorf("regression: %s %.3e cells/s is %.1f%% below baseline %.3e (run %q), tolerance %.0f%%",
			row, got.CellsPerSec, 100*(1-got.CellsPerSec/want.CellsPerSec), want.CellsPerSec, prev.PR, 100*tolerance)
	}
	fmt.Fprintf(stderr, "regression check: %s %.3e cells/s vs baseline %.3e (run %q): ok\n",
		row, got.CellsPerSec, want.CellsPerSec, prev.PR)
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seedex/internal/refstore"
)

func writeFasta(t *testing.T, seed int64, length int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString(">chr1 test contig\n")
	for i := 0; i < length; i++ {
		sb.WriteByte("ACGT"[rng.Intn(4)])
		if (i+1)%70 == 0 {
			sb.WriteByte('\n')
		}
	}
	sb.WriteByte('\n')
	path := filepath.Join(t.TempDir(), "ref.fa")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildVerifyInfo(t *testing.T) {
	fasta := writeFasta(t, 5, 2000)
	out := filepath.Join(t.TempDir(), "ref.rix")

	var stdout, stderr bytes.Buffer
	if err := run([]string{"build", "-ref", fasta, "-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("build: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "published") || !strings.Contains(stdout.String(), "1 contigs") {
		t.Errorf("build output: %q", stdout.String())
	}

	stdout.Reset()
	if err := run([]string{"verify", out}, &stdout, &stderr); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(stdout.String(), "ok") {
		t.Errorf("verify output: %q", stdout.String())
	}

	stdout.Reset()
	if err := run([]string{"info", out}, &stdout, &stderr); err != nil {
		t.Fatalf("info: %v", err)
	}
	var info refstore.Info
	if err := json.Unmarshal(stdout.Bytes(), &info); err != nil {
		t.Fatalf("info output is not JSON: %v\n%s", err, stdout.String())
	}
	if info.Contigs != 1 || info.TextBytes == 0 {
		t.Errorf("info = %+v", info)
	}

	// The published file is actually loadable by the serving store.
	st, err := refstore.Open(out, refstore.Options{NoWarmup: true})
	if err != nil {
		t.Fatalf("store cannot open built index: %v", err)
	}
	st.Close()
}

func TestVerifyRejectsCorruption(t *testing.T) {
	fasta := writeFasta(t, 6, 1500)
	out := filepath.Join(t.TempDir(), "ref.rix")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"build", "-ref", fasta, "-out", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(out+".bad", data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", out + ".bad"}, &stdout, &stderr); err == nil {
		t.Fatal("corrupt container verified")
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &stdout, &stderr); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown subcommand: %v", err)
	}
	if err := run([]string{"build"}, &stdout, &stderr); err == nil {
		t.Fatal("build without flags accepted")
	}
	if err := run([]string{"build", "-ref", "/nonexistent.fa", "-out", "/tmp/x.rix"}, &stdout, &stderr); err == nil {
		t.Fatal("missing FASTA accepted")
	}
	if err := run([]string{"verify"}, &stdout, &stderr); err == nil {
		t.Fatal("verify without a path accepted")
	}
	if err := run([]string{"info", "/nonexistent.rix"}, &stdout, &stderr); err == nil {
		t.Fatal("info on a missing file accepted")
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"seedex/internal/bwamem"
	"seedex/internal/fastx"
	"seedex/internal/genome"
	"seedex/internal/obs"
	"seedex/internal/refstore"
)

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: seedex-index build|verify|info ... (run a subcommand with -h for its flags)")
	}
	switch cmd := args[0]; cmd {
	case "build":
		return runBuild(args[1:], stdout, stderr)
	case "verify":
		return runVerify(args[1:], stdout)
	case "info":
		return runInfo(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want build, verify, or info)", cmd)
	}
}

func runBuild(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("seedex-index build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	refPath := fs.String("ref", "", "reference FASTA to index (required)")
	out := fs.String("out", "", "container file to publish (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *out == "" {
		return fmt.Errorf("build needs both -ref and -out")
	}

	rf, err := os.Open(*refPath)
	if err != nil {
		return err
	}
	recs, err := fastx.ReadFasta(rf)
	rf.Close()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no sequences in %s", *refPath)
	}
	contigs := make([]bwamem.Contig, len(recs))
	for i, r := range recs {
		contigs[i] = bwamem.Contig{Name: r.Name, Seq: genome.Encode(string(r.Seq))}
	}
	ref, ix, err := bwamem.BuildIndex(contigs)
	if err != nil {
		return err
	}
	info, err := refstore.WriteFile(*out, ref, ix)
	if err != nil {
		return err
	}
	obs.NewLogger(stdout, "seedex-index").Info(
		fmt.Sprintf("published %s (%d contigs, %d text bytes, %d file bytes)",
			*out, info.Contigs, info.TextBytes, info.FileBytes))
	return nil
}

func runVerify(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("seedex-index verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("verify takes exactly one container path")
	}
	path := fs.Arg(0)
	info, err := refstore.Verify(path)
	if err != nil {
		return fmt.Errorf("%s failed verification: %w", path, err)
	}
	obs.NewLogger(stdout, "seedex-index").Info(
		fmt.Sprintf("%s ok (%d contigs, %d file bytes, text crc %08x, sa crc %08x)",
			path, info.Contigs, info.FileBytes, info.TextCRC, info.SACRC))
	return nil
}

func runInfo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("seedex-index info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info takes exactly one container path")
	}
	info, err := refstore.Verify(fs.Arg(0))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

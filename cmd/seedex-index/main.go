// Command seedex-index builds and checks the checksummed container
// indexes that seedex-serve memory-maps behind /v1/map.
//
// Usage:
//
//	seedex-index build -ref genome.fa -out ref.rix
//	seedex-index verify ref.rix
//	seedex-index info ref.rix
//
// build encodes the reference and its FM-index into one container file
// and publishes it atomically (temp file + fsync + rename), so a crash
// mid-build never leaves a half-written index where a server could find
// it, and a running server re-reading the path on reload always sees
// either the old file or the complete new one. verify re-reads every
// section against the embedded CRCs; info prints the header as JSON.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "seedex-index:", err)
		os.Exit(1)
	}
}

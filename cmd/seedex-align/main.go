// Command seedex-align is the end-to-end aligner CLI: it maps FASTQ reads
// against a FASTA reference and writes SAM, with a selectable extension
// engine (full-band reference, plain banded heuristic, or the SeedEx
// speculative extender).
//
// Usage:
//
//	seedex-align -ref genome.fa -reads reads.fq -extender seedex -band 20 > out.sam
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "seedex-align:", err)
		os.Exit(1)
	}
}

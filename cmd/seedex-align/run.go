package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/ert"
	"seedex/internal/fastx"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
	"seedex/internal/sam"
)

// run is the testable CLI body; main wires it to os streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("seedex-align", flag.ContinueOnError)
	fs.SetOutput(stderr)
	refPath := fs.String("ref", "", "reference FASTA (required)")
	readsPath := fs.String("reads", "", "reads FASTQ (required)")
	reads2Path := fs.String("reads2", "", "mate FASTQ (enables paired-end mode)")
	extName := fs.String("extender", "seedex", "extension engine: seedex | fullband | banded")
	band := fs.Int("band", 20, "one-sided band (SeedEx and banded engines)")
	seeder := fs.String("seeder", "fm", "seeding engine: fm (suffix-array SMEM) | fmd (bidirectional SMEM) | ert (radix tree)")
	indexPath := fs.String("index", "", "index file: loaded if it exists, otherwise built from -ref and saved")
	workers := fs.Int("workers", 0, "alignment workers (0 = GOMAXPROCS)")
	statsOut := fs.Bool("stats", true, "print check statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *readsPath == "" {
		fs.Usage()
		return fmt.Errorf("-ref and -reads are required")
	}

	rf, err := os.Open(*refPath)
	if err != nil {
		return err
	}
	refs, err := fastx.ReadFasta(rf)
	rf.Close()
	if err != nil {
		return err
	}
	if len(refs) == 0 {
		return fmt.Errorf("no sequences in %s", *refPath)
	}
	contigs := make([]bwamem.Contig, len(refs))
	names := make([]string, len(refs))
	lengths := make([]int, len(refs))
	for i, r := range refs {
		contigs[i] = bwamem.Contig{Name: r.Name, Seq: genome.Encode(string(r.Seq))}
		names[i], lengths[i] = r.Name, len(r.Seq)
	}

	qf, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	fq, err := fastx.ReadFastq(qf)
	qf.Close()
	if err != nil {
		return err
	}

	ext, err := core.NamedExtender(*extName, *band)
	if err != nil {
		return err
	}
	se, _ := ext.(*core.SeedEx)

	var a *bwamem.Aligner
	if *indexPath != "" {
		if f, ferr := os.Open(*indexPath); ferr == nil {
			ref, ix, lerr := bwamem.LoadIndex(f)
			f.Close()
			if lerr != nil {
				return fmt.Errorf("loading %s: %w", *indexPath, lerr)
			}
			fmt.Fprintf(stderr, "loaded index %s (%d contigs)\n", *indexPath, len(ref.Names))
			a = bwamem.NewWithIndex(ref, ix, ext)
		} else {
			ref, ix, berr := bwamem.BuildIndex(contigs)
			if berr != nil {
				return berr
			}
			f, cerr := os.Create(*indexPath)
			if cerr != nil {
				return cerr
			}
			if serr := bwamem.SaveIndex(f, ref, ix); serr != nil {
				f.Close()
				return serr
			}
			if cerr := f.Close(); cerr != nil {
				return cerr
			}
			fmt.Fprintf(stderr, "built and saved index %s\n", *indexPath)
			a = bwamem.NewWithIndex(ref, ix, ext)
		}
	} else {
		var err error
		a, err = bwamem.NewMulti(contigs, ext)
		if err != nil {
			return err
		}
	}
	if *extName == "banded" {
		a.Opts.TraceBand = *band
	}
	switch *seeder {
	case "fm":
	case "fmd":
		fmd, err := fmindex.NewFMD(append([]byte(nil), a.Ref...))
		if err != nil {
			return err
		}
		a.Seeder = bwamem.FMDSeeder{Index: fmd, Cfg: fmindex.DefaultSMEMConfig()}
	case "ert":
		a.Seeder = bwamem.ERTSeeder{Index: ert.Build(a.Ref, ert.K), Cfg: ert.DefaultConfig()}
	default:
		return fmt.Errorf("unknown seeder %q", *seeder)
	}

	w := bufio.NewWriter(stdout)
	fmt.Fprint(w, sam.HeaderMulti(names, lengths, "seedex-align"))

	if *reads2Path != "" {
		qf2, err := os.Open(*reads2Path)
		if err != nil {
			return err
		}
		fq2, err := fastx.ReadFastq(qf2)
		qf2.Close()
		if err != nil {
			return err
		}
		if len(fq2) != len(fq) {
			return fmt.Errorf("paired inputs differ in length: %d vs %d reads", len(fq), len(fq2))
		}
		pairs := make([]bwamem.ReadPair, len(fq))
		for i := range fq {
			pairs[i] = bwamem.ReadPair{
				Name: fq[i].Name,
				Seq1: genome.Encode(string(fq[i].Seq)), Qual1: fq[i].Qual,
				Seq2: genome.Encode(string(fq2[i].Seq)), Qual2: fq2[i].Qual,
			}
		}
		recs, pst := a.RunPairs(pairs, *workers)
		for _, rec := range recs {
			fmt.Fprintln(w, rec.String())
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if *statsOut {
			fmt.Fprintf(stderr, "paired %d fragments: %d proper pairs, insert %.0f±%.0f, %d extensions\n",
				pst.Pairs, pst.ProperPairs, pst.Insert.Mean, pst.Insert.Std, pst.Extensions)
			if se != nil {
				fmt.Fprintln(stderr, se.Stats)
			}
		}
		return nil
	}

	reads := make([]bwamem.Read, len(fq))
	for i, r := range fq {
		reads[i] = bwamem.Read{Name: r.Name, Seq: genome.Encode(string(r.Seq)), Qual: r.Qual}
	}
	recs, stats := a.Run(reads, *workers)
	for _, rec := range recs {
		fmt.Fprintln(w, rec.String())
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *statsOut {
		fmt.Fprintf(stderr, "aligned %d/%d reads, %d extensions; seeding %.1f ms, extension %.1f ms, rest %.1f ms\n",
			stats.Mapped, stats.Reads, stats.Extensions,
			float64(stats.SeedingNs)/1e6, float64(stats.ExtensionNs)/1e6, float64(stats.RestNs)/1e6)
		if se != nil {
			fmt.Fprintln(stderr, se.Stats)
		}
	}
	return nil
}

package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seedex/internal/bwamem"
	"seedex/internal/fastx"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

// writeWorld writes a FASTA reference and FASTQ reads into dir.
func writeWorld(t *testing.T, dir string, nReads int) (refPath, readsPath string) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ref := genome.Simulate(genome.SimConfig{Length: 40_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(nReads), rng)

	refPath = filepath.Join(dir, "ref.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fastx.WriteFasta(rf, []fastx.FastaRecord{{Name: "chrT", Seq: []byte(genome.Decode(ref))}}); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	readsPath = filepath.Join(dir, "reads.fq")
	qf, err := os.Create(readsPath)
	if err != nil {
		t.Fatal(err)
	}
	fq := make([]fastx.FastqRecord, len(reads))
	for i, r := range reads {
		fq[i] = fastx.FastqRecord{Name: r.ID, Seq: []byte(genome.Decode(r.Seq)), Qual: r.Qual}
	}
	if err := fastx.WriteFastq(qf, fq); err != nil {
		t.Fatal(err)
	}
	qf.Close()
	return
}

func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath := writeWorld(t, dir, 60)

	var samSeedEx, samFull, stderr bytes.Buffer
	if err := run([]string{"-ref", refPath, "-reads", readsPath, "-extender", "seedex", "-band", "20"}, &samSeedEx, &stderr); err != nil {
		t.Fatalf("seedex run: %v (%s)", err, stderr.String())
	}
	if err := run([]string{"-ref", refPath, "-reads", readsPath, "-extender", "fullband"}, &samFull, &stderr); err != nil {
		t.Fatalf("fullband run: %v", err)
	}
	if samSeedEx.String() != samFull.String() {
		t.Fatal("CLI SAM output differs between seedex and fullband engines")
	}
	lines := strings.Split(strings.TrimSpace(samSeedEx.String()), "\n")
	if !strings.HasPrefix(lines[0], "@HD") {
		t.Fatalf("missing SAM header: %q", lines[0])
	}
	body := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "@") {
			body++
			if len(strings.Split(l, "\t")) < 11 {
				t.Fatalf("malformed SAM line: %q", l)
			}
		}
	}
	if body != 60 {
		t.Fatalf("expected 60 alignment lines, got %d", body)
	}
	if !strings.Contains(stderr.String(), "aligned") {
		t.Fatalf("stats not printed: %q", stderr.String())
	}
}

func TestCLIERTSeeder(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath := writeWorld(t, dir, 20)
	var out, stderr bytes.Buffer
	if err := run([]string{"-ref", refPath, "-reads", readsPath, "-seeder", "ert", "-extender", "banded", "-band", "5"}, &out, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chrT") {
		t.Fatal("no alignments produced with ERT seeding")
	}
}

func TestCLIErrors(t *testing.T) {
	var out, stderr bytes.Buffer
	if err := run(nil, &out, &stderr); err == nil {
		t.Fatal("missing required flags must error")
	}
	if err := run([]string{"-ref", "nope.fa", "-reads", "nope.fq"}, &out, &stderr); err == nil {
		t.Fatal("missing files must error")
	}
	dir := t.TempDir()
	refPath, readsPath := writeWorld(t, dir, 1)
	err := run([]string{"-ref", refPath, "-reads", readsPath, "-extender", "bogus"}, &out, &stderr)
	if err == nil {
		t.Fatal("unknown extender must error")
	}
	for _, want := range []string{`"bogus"`, "seedex", "fullband", "banded"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-extender error %q does not name %q", err, want)
		}
	}
	if err := run([]string{"-ref", refPath, "-reads", readsPath, "-seeder", "bogus"}, &out, &stderr); err == nil {
		t.Fatal("unknown seeder must error")
	}
}

func TestCLIIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	refPath, readsPath := writeWorld(t, dir, 30)
	idxPath := filepath.Join(dir, "ref.sdx")

	var first, second, stderr bytes.Buffer
	// First run builds and saves the index.
	if err := run([]string{"-ref", refPath, "-reads", readsPath, "-index", idxPath, "-extender", "fullband"}, &first, &stderr); err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "built and saved index") {
		t.Fatalf("index not built: %s", stderr.String())
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatal(err)
	}
	// Second run loads it and must produce identical SAM.
	stderr.Reset()
	if err := run([]string{"-ref", refPath, "-reads", readsPath, "-index", idxPath, "-extender", "fullband"}, &second, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "loaded index") {
		t.Fatalf("index not loaded: %s", stderr.String())
	}
	if first.String() != second.String() {
		t.Fatal("SAM differs between built and loaded index runs")
	}
}

func TestCLIPairedEnd(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	ref := genome.Simulate(genome.SimConfig{Length: 50_000}, rng)
	pairs, _ := bwamem.SimulatePairs(ref, 40, 101, 350, 40, 0.002, rng)

	refPath := filepath.Join(dir, "ref.fa")
	rf, _ := os.Create(refPath)
	if err := fastx.WriteFasta(rf, []fastx.FastaRecord{{Name: "chrT", Seq: []byte(genome.Decode(ref))}}); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	write := func(name string, second bool) string {
		p := filepath.Join(dir, name)
		f, _ := os.Create(p)
		var fq []fastx.FastqRecord
		for _, pr := range pairs {
			seq := pr.Seq1
			if second {
				seq = pr.Seq2
			}
			qual := make([]byte, len(seq))
			for i := range qual {
				qual[i] = 'I'
			}
			fq = append(fq, fastx.FastqRecord{Name: pr.Name, Seq: []byte(genome.Decode(seq)), Qual: qual})
		}
		if err := fastx.WriteFastq(f, fq); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return p
	}
	r1 := write("r1.fq", false)
	r2 := write("r2.fq", true)

	var out, stderr bytes.Buffer
	if err := run([]string{"-ref", refPath, "-reads", r1, "-reads2", r2, "-extender", "seedex"}, &out, &stderr); err != nil {
		t.Fatalf("%v (%s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "proper pairs") {
		t.Fatalf("paired stats missing: %s", stderr.String())
	}
	body := 0
	proper := 0
	for _, l := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.HasPrefix(l, "@") {
			continue
		}
		body++
		fields := strings.Split(l, "\t")
		var flag int
		fmt.Sscan(fields[1], &flag)
		if flag&0x1 == 0 {
			t.Fatalf("unpaired flag in paired mode: %s", l)
		}
		if flag&0x2 != 0 {
			proper++
		}
	}
	if body != 2*len(pairs) {
		t.Fatalf("expected %d records, got %d", 2*len(pairs), body)
	}
	if proper < body*8/10 {
		t.Fatalf("only %d/%d proper-pair records", proper, body)
	}
}
